"""Sharded fault-injection campaigns with worker-invariant statistics.

Follows the runner's campaign recipe: a frozen :class:`InjectionSpec`
captures every parameter that affects the result and is hashed into the
checkpoint key; a worker-global initializer builds the heavy shared
state (trace, golden run, fault sample) once per process; shards are
contiguous fault-index spans whose JSON payloads merge in shard order
into an :class:`InjectionStats` that is bit-identical for any worker
count, chunk size, or checkpoint/resume history.

:func:`masking_validation` runs the paper's headline experiment: the
same fault sample restricted to mapped-out ICI blocks, once on the
fully-degraded configuration (where every fault must be masked) and
once on the full configuration (where the same blocks are live and the
sample produces a nonzero SDC rate).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.runner.executor import ProgressFn, run_shards
from repro.runner.seeding import shard_ranges
from repro.runner.store import CheckpointStore, config_hash
from repro.telemetry import TELEMETRY

OUTCOMES = ("masked", "sdc", "detected", "hang")

#: Fault-map dimension order for the ``counts`` tuple.
DIMENSIONS = (
    "frontend", "int_backend", "fp_backend", "iq_int", "iq_fp", "lsq"
)


@dataclass(frozen=True)
class InjectionSpec:
    """Everything that determines an injection campaign's outcome."""

    benchmark: str = "gzip"
    n_instructions: int = 2000
    trace_seed: int = 7
    counts: Tuple[int, ...] = (2, 2, 2, 2, 2, 2)  # DIMENSIONS order
    model: str = "both"  # transient | stuckat | both
    n_faults: int = 64
    seed: int = 0
    blocks: Optional[Tuple[str, ...]] = None  # restrict sites to blocks
    chunk_size: int = 8
    # Suffix-replay machinery (fork=False is the from-scratch reference;
    # classifications are bit-identical either way).
    checkpoint_interval: int = 128
    fork: bool = True
    # Summary-only mode: drop per-fault records, keep outcome counts,
    # exact latency/distance aggregates, and a bounded exemplar set.
    keep_records: bool = True
    exemplar_cap: int = 8
    # Site sampling: "uniform" | "weighted" (residency-proportional,
    # profiled during the golden run).
    sampling: str = "uniform"
    profile_stride: int = 16
    # Checkpoint-grouped warm-core replay: shard faults sharing a fork
    # checkpoint run on one restored core (O(dirty) rearm between
    # faults).  Results are bit-identical with grouping on or off.
    grouped: bool = True
    # Compressed-byte ceiling on the golden snapshot arena (0 = none).
    snapshot_budget: int = 0
    # Persistent golden-prefix cache under REPRO_CACHE_DIR: warm
    # campaigns skip golden simulation entirely.
    golden_cache: bool = False
    # Sticky-fault first-effect scan: one extra golden-trajectory replay
    # licenses checkpoint forking (or a zero-cost masked verdict) for
    # cycle-0 stuck-ats.  Results are bit-identical with it on or off;
    # False restores the PR 6 replay-from-scratch behavior.
    first_effect: bool = True


@dataclass
class InjectionStats:
    """Merged campaign result: outcome counts + per-fault records.

    With ``keep_records=False`` (summary-only campaigns) the full record
    list stays empty; instead each outcome keeps its first
    ``exemplar_cap`` records and the latency/distance aggregates stay
    exact.  Merge semantics remain worker-count-invariant: shards merge
    in shard-index order, so "first N exemplars" means the same faults
    as a serial run.
    """

    outcomes: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in OUTCOMES}
    )
    records: List[Dict[str, Any]] = field(default_factory=list)
    keep_records: bool = True
    exemplar_cap: int = 8
    exemplars: Dict[str, List[Dict[str, Any]]] = field(
        default_factory=dict
    )
    latency_n: int = 0
    latency_sum: int = 0
    distance_n: int = 0
    distance_sum: int = 0
    #: Per-ICI-block outcome counts, kept even in summary-only mode —
    #: the per-block SDC rates `repro.decide` folds into its
    #: vulnerability scores.  {block: {outcome: count}}.
    by_block: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return sum(self.outcomes.values())

    def rate(self, outcome: str) -> float:
        return self.outcomes.get(outcome, 0) / self.n if self.n else 0.0

    def add(self, fault, result) -> None:
        self.outcomes[result.outcome] += 1
        block = self.by_block.setdefault(
            fault.site.block, {k: 0 for k in OUTCOMES}
        )
        block[result.outcome] += 1
        if result.detect_latency is not None:
            self.latency_n += 1
            self.latency_sum += result.detect_latency
        if result.commit_distance is not None:
            self.distance_n += 1
            self.distance_sum += result.commit_distance
        rec = {
            "fault": fault.to_json(),
            "block": fault.site.block,
            "outcome": result.outcome,
            "cycles": result.cycles,
            "commits": result.commits,
            "armed": result.armed,
            "detect_reason": result.detect_reason,
            "detect_latency": result.detect_latency,
            "commit_distance": result.commit_distance,
        }
        if self.keep_records:
            self.records.append(rec)
        else:
            ex = self.exemplars.setdefault(result.outcome, [])
            if len(ex) < self.exemplar_cap:
                ex.append(rec)

    def merge(self, other: "InjectionStats") -> "InjectionStats":
        """Combine two shard results (records concatenate in shard
        order, so the merged list is the serial campaign's list).  In
        summary-only mode exemplars concatenate the same way and re-cap,
        which reproduces the serial first-``exemplar_cap`` set."""
        keep = self.keep_records if self.n else other.keep_records
        cap = self.exemplar_cap if self.n else other.exemplar_cap
        outcomes = {
            k: self.outcomes.get(k, 0) + other.outcomes.get(k, 0)
            for k in OUTCOMES
        }
        merged = InjectionStats(
            outcomes,
            self.records + other.records,
            keep_records=keep,
            exemplar_cap=cap,
        )
        for k in set(self.exemplars) | set(other.exemplars):
            ex = self.exemplars.get(k, []) + other.exemplars.get(k, [])
            merged.exemplars[k] = ex[:cap]
        # Blocks appear in first-shard-touched order; counts are plain
        # integer sums, so the merged map is worker-count-invariant.
        for by in (self.by_block, other.by_block):
            for blk, counts in by.items():
                acc = merged.by_block.setdefault(
                    blk, {k: 0 for k in OUTCOMES}
                )
                for k, v in counts.items():
                    acc[k] = acc.get(k, 0) + v
        merged.latency_n = self.latency_n + other.latency_n
        merged.latency_sum = self.latency_sum + other.latency_sum
        merged.distance_n = self.distance_n + other.distance_n
        merged.distance_sum = self.distance_sum + other.distance_sum
        return merged

    def to_json(self) -> Dict[str, Any]:
        return {
            "outcomes": self.outcomes,
            "records": self.records,
            "keep_records": self.keep_records,
            "exemplar_cap": self.exemplar_cap,
            "exemplars": self.exemplars,
            "latency": [self.latency_n, self.latency_sum],
            "distance": [self.distance_n, self.distance_sum],
            "by_block": {
                blk: self.by_block[blk] for blk in sorted(self.by_block)
            },
        }

    @classmethod
    def from_json(cls, d: Dict[str, Any]) -> "InjectionStats":
        outcomes = {k: 0 for k in OUTCOMES}
        outcomes.update({k: int(v) for k, v in d["outcomes"].items()})
        stats = cls(
            outcomes,
            list(d["records"]),
            keep_records=bool(d.get("keep_records", True)),
            exemplar_cap=int(d.get("exemplar_cap", 8)),
            exemplars={
                k: list(v) for k, v in d.get("exemplars", {}).items()
            },
        )
        stats.latency_n, stats.latency_sum = (
            int(x) for x in d.get("latency", (0, 0))
        )
        stats.distance_n, stats.distance_sum = (
            int(x) for x in d.get("distance", (0, 0))
        )
        stats.by_block = {
            blk: {k: int(v) for k, v in counts.items()}
            for blk, counts in d.get("by_block", {}).items()
        }
        return stats

    def block_rate(self, block: str, outcome: str) -> float:
        """Rate of ``outcome`` among the faults injected into ``block``."""
        counts = self.by_block.get(block)
        if not counts:
            return 0.0
        total = sum(counts.values())
        return counts.get(outcome, 0) / total if total else 0.0

    def summary(self) -> str:
        lines = [f"injections: {self.n}"]
        for k in OUTCOMES:
            c = self.outcomes.get(k, 0)
            lines.append(f"  {k:9s} {c:6d}  ({self.rate(k):6.1%})")
        if self.latency_n:
            lines.append(
                f"  detection latency: mean "
                f"{self.latency_sum / self.latency_n:.1f} cycles"
            )
        if self.distance_n:
            lines.append(
                f"  corruption distance: mean "
                f"{self.distance_sum / self.distance_n:.1f} commits"
            )
        return "\n".join(lines)


# Worker-global campaign state: {"spec", "golden", "faults"}.  Built once
# per worker by _inject_init; forked workers inherit it copy-free when
# the parent called prepare_injection() first.
_INJECT: Dict[str, Any] = {}


def _build_config(spec: InjectionSpec):
    from repro.cpu.degraded import degraded_params
    from repro.cpu.params import MachineConfig
    from repro.yieldmodel.configs import CoreCounts

    counts = CoreCounts(**dict(zip(DIMENSIONS, spec.counts)))
    return degraded_params(MachineConfig(rescue=True), counts), counts


def _inject_init(spec: InjectionSpec) -> None:
    if _INJECT.get("spec") == spec and "golden" in _INJECT:
        return
    from repro.inject.goldencache import (
        golden_key, load_golden, load_scan, scan_key, store_golden,
        store_scan,
    )
    from repro.inject.harness import run_golden
    from repro.inject.models import sample_faults
    from repro.inject.sites import enumerate_sites, sites_in_blocks
    from repro.workloads.generator import generate_trace
    from repro.workloads.profiles import profile

    config, _ = _build_config(spec)
    trace = generate_trace(
        profile(spec.benchmark), spec.n_instructions, seed=spec.trace_seed
    )
    interval = spec.checkpoint_interval if spec.fork else 0
    stride = spec.profile_stride if spec.sampling == "weighted" else 0
    golden = None
    key = None
    if spec.golden_cache:
        key = golden_key(
            spec.benchmark, spec.n_instructions, spec.trace_seed,
            spec.counts, interval, stride, spec.snapshot_budget,
        )
        golden = load_golden(config, trace, spec.n_instructions, key)
        if golden is not None:
            TELEMETRY.count("inject.golden_cache_hits")
    if golden is None:
        golden = run_golden(
            config,
            trace,
            spec.n_instructions,
            checkpoint_interval=interval,
            profile_stride=stride,
            snapshot_budget=spec.snapshot_budget,
        )
        if spec.golden_cache:
            store_golden(golden, key)
    sites = enumerate_sites(config)
    if spec.blocks is not None:
        sites = sites_in_blocks(sites, spec.blocks)
    faults = sample_faults(
        sites, spec.n_faults, spec.seed, spec.model, config,
        golden.cycles, mode=spec.sampling, profile=golden.profile,
    )
    first_effect: Dict[int, object] = {}
    if spec.fork and spec.first_effect:
        from repro.inject.harness import first_effect_scan

        skey = None
        cached = None
        if spec.golden_cache:
            skey = scan_key(
                key, len(faults), spec.seed, spec.model, spec.blocks,
                spec.sampling,
            )
            cached = load_scan(skey, len(faults))
        if cached is not None:
            first_effect = cached
            TELEMETRY.count("inject.scan_cache_hits")
        else:
            first_effect = first_effect_scan(golden, faults)
            if skey is not None:
                store_scan(first_effect, skey, len(faults))
    _INJECT.clear()
    _INJECT.update(
        spec=spec, golden=golden, faults=faults,
        first_effect=first_effect,
    )


def _inject_worker(span: Tuple[int, int]) -> Dict:
    """Classify one contiguous fault span; returns shard JSON.

    With ``spec.fork``, each fault's fork point comes from a shared
    plan: transients fork at the newest checkpoint at or before their
    activation cycle, sticky faults at the checkpoint licensed by the
    first-effect scan — or are synthesized outright
    (:func:`~repro.inject.harness.synth_never_result`) when the scan
    proved their forcing never bites.  With ``spec.grouped`` the
    shard's remaining faults are grouped by fork checkpoint — a stable
    sort, so original order is preserved within each group — and every
    multi-fault group runs on one warm
    :class:`~repro.inject.harness.ReplaySession` core, re-armed in
    place between faults (singleton groups take a plain restore and
    skip the dirty-tracking overhead).  Results are then folded into
    the stats in the original fault order, so shard payloads (records,
    exemplars, per-block counts) are bit-identical to the ungrouped
    path for any worker count or chunking.  The grouping telemetry
    (``inject.restore_reuses`` / ``inject.group_sizes``) is a
    scheduling metric: it depends on how faults land in shards and is
    *not* part of the worker-count-invariant deterministic view.
    """
    from repro.inject.harness import (
        ReplaySession, run_with_fault, synth_never_result,
    )

    start, stop = span
    spec = _INJECT["spec"]
    golden = _INJECT["golden"]
    faults = _INJECT["faults"][start:stop]
    scan = _INJECT.get("first_effect") or {}
    stats = InjectionStats(
        keep_records=spec.keep_records, exemplar_cap=spec.exemplar_cap
    )
    t = TELEMETRY
    results: List = [None] * len(faults)
    # Per-fault fork plan (identical for the grouped and ungrouped
    # paths, so their per-fault telemetry merges to the same values):
    # fork_idx = arena index (None: from cycle 0), prearm = sticky
    # arming bookkeeping to restore on the forked core, or a
    # synthesized masked verdict for never-biting sticky faults.
    fork_idx: List[Optional[int]] = [None] * len(faults)
    prearm: List[Optional[tuple]] = [None] * len(faults)
    synth = [False] * len(faults)
    if spec.fork:
        for i, fault in enumerate(faults):
            fe = scan.get(start + i)
            if fe is None:
                fork_idx[i] = golden.fork_index(fault.cycle)
            elif fe.first is None:
                synth[i] = True
                results[i] = synth_never_result(golden, fe)
                if t.enabled:
                    t.count("inject.scan_skips")
                    t.count("inject.cycles_saved", golden.cycles)
            else:
                k = golden.fork_index(fe.first)
                fork_idx[i] = k
                if k is not None:
                    prearm[i] = fe.prearm(golden.arena.cycle_of(k))
    grouped = (
        spec.grouped
        and spec.fork
        and golden.arena is not None
        and len(golden.arena) > 0
    )
    if grouped:
        todo = [i for i in range(len(faults)) if not synth[i]]
        order = sorted(
            todo,
            key=lambda i: -1 if fork_idx[i] is None else fork_idx[i],
        )
        group_n = {
            k: sum(1 for i in todo if fork_idx[i] == k)
            for k in set(fork_idx[i] for i in todo)
        }
        if t.enabled:
            for k, n in sorted(
                group_n.items(), key=lambda kv: (kv[0] is None, kv[0])
            ):
                if k is not None:
                    t.observe("inject.group_sizes", n)
        session: Optional[ReplaySession] = None
        for i in order:
            fault = faults[i]
            k = fork_idx[i]
            with t.span("inject.run"):
                if k is None or group_n[k] == 1:
                    # No checkpoint (plain from-cycle-0 run) or a
                    # singleton group: a one-shot restore without
                    # dirty-tracking overhead beats a session.
                    results[i] = run_with_fault(
                        golden, fault, fork=True,
                        fork_index=k, prearm=prearm[i],
                    )
                else:
                    if session is None or session.index != k:
                        session = ReplaySession(golden, k)
                    results[i] = session.run(fault, prearm=prearm[i])
    else:
        for i, fault in enumerate(faults):
            if synth[i]:
                continue
            with t.span("inject.run"):
                results[i] = run_with_fault(
                    golden, fault, fork=spec.fork,
                    fork_index=fork_idx[i], prearm=prearm[i],
                )
    for fault, result in zip(faults, results):
        stats.add(fault, result)
        if t.enabled:
            t.count("inject.runs")
            t.count(f"inject.outcome.{result.outcome}")
            t.count("inject.faulty_cycles", result.cycles)
            if result.detect_latency is not None:
                t.observe("inject.detect_latency", result.detect_latency)
            if result.commit_distance is not None:
                t.observe(
                    "inject.commit_distance", result.commit_distance
                )
    return stats.to_json()


def prepare_injection(spec: InjectionSpec):
    """Build trace + golden run + fault sample in the calling process.

    Call before :func:`run_injection` so forked workers inherit the
    golden run instead of re-simulating it per process.
    """
    _inject_init(spec)
    return _INJECT["golden"], _INJECT["faults"]


def run_injection(
    spec: InjectionSpec,
    *,
    workers: int = 1,
    resume: bool = False,
    checkpoint: bool = True,
    cache_root: Optional[str] = None,
    store: Optional[CheckpointStore] = None,
    progress: Optional[ProgressFn] = None,
) -> InjectionStats:
    """Run the sharded injection campaign; returns merged stats.

    Bit-identical for any ``workers``/``chunk_size``/resume history:
    faults are sampled from per-index seed streams, each injection is an
    independent deterministic simulation, and shard payloads merge in
    shard-index order.  An explicit ``store`` overrides the default
    checkpoint store (the campaign service's injection seam).
    """
    prepare_injection(spec)
    spans = shard_ranges(len(_INJECT["faults"]), spec.chunk_size)
    if store is None:
        store = _campaign_store(spec, checkpoint, cache_root)
    payloads = run_shards(
        spans,
        _inject_worker,
        workers=workers,
        initializer=_inject_init,
        initargs=(spec,),
        store=store,
        resume=resume,
        progress=progress,
    )
    merged = InjectionStats()
    for payload in payloads:
        merged = merged.merge(InjectionStats.from_json(payload))
    return merged


def _campaign_store(
    spec: InjectionSpec, checkpoint: bool, cache_root: Optional[str]
) -> Optional[CheckpointStore]:
    if not checkpoint:
        return None
    return CheckpointStore(
        "inject", config_hash(asdict(spec)), root=cache_root
    )


def masking_validation(
    base_spec: Optional[InjectionSpec] = None,
    *,
    workers: int = 1,
    resume: bool = False,
    checkpoint: bool = True,
    cache_root: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
) -> Dict[str, InjectionStats]:
    """The degraded-mode masking experiment (paper's headline property).

    Samples faults only from the six half-1 ICI blocks, then runs the
    sample on (a) the fully-degraded configuration, where those blocks
    are mapped out — every fault must classify ``masked`` — and (b) the
    full configuration, where the same blocks are live and the sample
    produces SDCs/hangs/detections.  Returns ``{"degraded": stats,
    "full": stats}``.
    """
    from repro.inject.sites import mapped_out_blocks
    from repro.yieldmodel.configs import CoreCounts

    spec = base_spec if base_spec is not None else InjectionSpec()
    shadow = mapped_out_blocks(CoreCounts(**{d: 1 for d in DIMENSIONS}))
    kwargs = dict(
        workers=workers, resume=resume, checkpoint=checkpoint,
        cache_root=cache_root, progress=progress,
    )
    degraded = run_injection(
        replace(spec, counts=(1,) * 6, blocks=shadow), **kwargs
    )
    full = run_injection(
        replace(spec, counts=(2,) * 6, blocks=shadow), **kwargs
    )
    return {"degraded": degraded, "full": full}
