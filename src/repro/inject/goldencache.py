"""Persistent golden-prefix cache.

Every injection campaign begins with the same expensive step: simulate
the fault-free run to produce the commit log, checkpoint arena, and
cycle/commit totals.  That result is a pure function of (workload,
instruction count, machine configuration, checkpoint interval, profile
stride, snapshot budget) — so repeated campaigns over the same golden
inputs (every ``repro decide`` run re-runs injection; every cold worker
process of an un-``prepare``-d campaign re-simulates) can skip golden
simulation entirely by memoizing it on disk.

Cache files live beside the shard checkpoints under
:func:`~repro.runner.store.default_cache_root` (``REPRO_CACHE_DIR``),
one pickle per key: ``golden-<key>.pkl``.  The key is a
:func:`~repro.runner.store.config_hash` over the golden-determining
parameters plus :data:`GOLDEN_CACHE_VERSION`; bump the version whenever
the simulator's golden semantics change (commit log format, snapshot
layout, value semantics) so stale caches are never read.  Writes are
atomic (``tmp`` + ``os.replace``): concurrent campaigns racing on a
cold cache each write their own tmp file and the last rename wins with
identical contents.

The payload stores only what the caller cannot rebuild: the commit
log, totals, digest, the compressed :class:`SnapshotArena`, and the
site profile.  Config and trace are cheap to reconstruct and are
re-attached on load, which keeps the file self-validating — a payload
whose totals do not match the requesting campaign is treated as a
miss.  Convergence views are derived data and rebuild lazily.

The sticky-fault **first-effect scan** caches beside the golden prefix
(``scan-<key>.pkl``) under the same contract: its key extends
:func:`golden_key` with everything that determines the fault sample
(count, seed, fault model, block filter, sampling mode), it shares
:data:`GOLDEN_CACHE_VERSION` (scan results replay against cached
checkpoints, so the two must invalidate together), and a payload whose
fault count disagrees with the requesting campaign is a miss.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Optional

from repro.runner.store import config_hash, default_cache_root

#: Bump when golden-run semantics or the payload layout change.
GOLDEN_CACHE_VERSION = 1


def golden_key(
    benchmark: str,
    n_instructions: int,
    trace_seed: int,
    counts,
    checkpoint_interval: int,
    profile_stride: int,
    snapshot_budget: int,
) -> str:
    """Cache key over everything that determines the golden result."""
    return config_hash(
        {
            "golden_version": GOLDEN_CACHE_VERSION,
            "benchmark": benchmark,
            "n_instructions": n_instructions,
            "trace_seed": trace_seed,
            "counts": list(counts),
            "checkpoint_interval": checkpoint_interval,
            "profile_stride": profile_stride,
            "snapshot_budget": snapshot_budget,
        }
    )


def golden_cache_path(key: str, root: Optional[Path] = None) -> Path:
    """On-disk location of the cache entry for ``key``."""
    base = Path(root) if root is not None else default_cache_root()
    return base / f"golden-{key}.pkl"


def load_golden(
    config, trace, n_instructions: int, key: str,
    root: Optional[Path] = None,
):
    """Cached :class:`~repro.inject.harness.GoldenRun` or None.

    Any read/unpickle failure, version skew, or total mismatch is a
    miss — the caller re-simulates and overwrites the entry.
    """
    from repro.inject.harness import GoldenRun

    path = golden_cache_path(key, root)
    try:
        payload = pickle.loads(path.read_bytes())
    except Exception:
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("version") != GOLDEN_CACHE_VERSION
        or payload.get("commits") != n_instructions
    ):
        return None
    return GoldenRun(
        config=config,
        trace=trace,
        n_instructions=n_instructions,
        log=payload["log"],
        cycles=payload["cycles"],
        commits=payload["commits"],
        digest=payload["digest"],
        arena=payload["arena"],
        checkpoint_interval=payload["checkpoint_interval"],
        profile=payload["profile"],
    )


def scan_key(
    golden: str,
    n_faults: int,
    seed: int,
    model: str,
    blocks,
    sampling: str,
) -> str:
    """Cache key over everything that determines the first-effect scan.

    ``golden`` is the :func:`golden_key` string — the scan is a pure
    function of the golden run plus the fault sample, so the golden key
    (which already folds in :data:`GOLDEN_CACHE_VERSION`) anchors it.
    """
    return config_hash(
        {
            "golden_version": GOLDEN_CACHE_VERSION,
            "golden": golden,
            "n_faults": n_faults,
            "seed": seed,
            "model": model,
            "blocks": None if blocks is None else list(blocks),
            "sampling": sampling,
        }
    )


def scan_cache_path(key: str, root: Optional[Path] = None) -> Path:
    """On-disk location of the first-effect scan entry for ``key``."""
    base = Path(root) if root is not None else default_cache_root()
    return base / f"scan-{key}.pkl"


def load_scan(key: str, n_faults: int, root: Optional[Path] = None):
    """Cached first-effect dict (fault index -> FirstEffect) or None.

    Any read/unpickle failure, version skew, or fault-count mismatch is
    a miss — the caller re-scans and overwrites the entry.
    """
    path = scan_cache_path(key, root)
    try:
        payload = pickle.loads(path.read_bytes())
    except Exception:
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("version") != GOLDEN_CACHE_VERSION
        or payload.get("n_faults") != n_faults
    ):
        return None
    return payload["scan"]


def store_scan(
    scan, key: str, n_faults: int, root: Optional[Path] = None
) -> None:
    """Atomically persist one first-effect scan under ``key``.

    Best-effort, like :func:`store_golden`: an unwritable cache
    directory degrades to a no-op, never to a failed campaign.
    """
    path = scan_cache_path(key, root)
    payload = {
        "version": GOLDEN_CACHE_VERSION,
        "n_faults": n_faults,
        "scan": scan,
    }
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_bytes(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass


def store_golden(golden, key: str, root: Optional[Path] = None) -> None:
    """Atomically persist one golden run under ``key``.

    Best-effort: an unwritable cache directory degrades to a no-op (the
    campaign simply stays cold), never to a failed campaign.
    """
    path = golden_cache_path(key, root)
    payload = {
        "version": GOLDEN_CACHE_VERSION,
        "log": golden.log,
        "cycles": golden.cycles,
        "commits": golden.commits,
        "digest": golden.digest,
        "arena": golden.arena,
        "checkpoint_interval": golden.checkpoint_interval,
        "profile": golden.profile,
    }
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_bytes(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
