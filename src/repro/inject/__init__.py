"""Architectural fault injection and SDC classification.

Closes the loop on the paper's defect-tolerance claim: inject a fault
into named microarchitectural state of a *running* core, diff the
committed architectural state against a golden run, and classify the
outcome (DAVOS-style simulation-based injection, ITHICA's taxonomy):

``masked``
    The faulty run commits the golden value stream in full — the fault
    never reached architectural state.  Every fault sited in a
    mapped-out ICI block must land here.
``sdc``
    A committed value diverges from the golden record: silent data
    corruption.
``detected``
    A microarchitectural checker fires first (committing a
    never-executed instruction, an out-of-range register tag, a
    physical-register double free).
``hang``
    The run fails to commit the full trace within the cycle-budget
    watchdog (suffix-scaled: the golden cycle count plus one golden
    suffix past the activation cycle, plus slack).

- :mod:`repro.inject.sites` — injection-site enumerator; every site
  maps to its owning ICI block so campaigns can be conditioned on the
  fault map,
- :mod:`repro.inject.models` — transient bit-flip and sticky stuck-at
  fault models applied through the core's architectural-state hooks,
- :mod:`repro.inject.profiler` — per-site occupancy profiling of the
  golden run (``--profile`` reports, residency-weighted sampling),
- :mod:`repro.inject.harness` — golden/faulty paired execution and
  outcome classification, with checkpointed suffix replay, a
  reconvergence early-exit (``fork=False`` keeps the from-scratch
  reference path; classifications are bit-identical), and warm-core
  group replay (:class:`ReplaySession`),
- :mod:`repro.inject.arena` — the delta-compressed, budget-bounded
  snapshot arena backing the golden checkpoint stream,
- :mod:`repro.inject.goldencache` — the persistent golden-prefix cache
  under ``REPRO_CACHE_DIR`` (warm campaigns skip golden simulation),
- :mod:`repro.inject.campaign` — sharded, checkpointable campaigns with
  worker-count-invariant merged :class:`InjectionStats`, including the
  degraded-mode masking validation.
"""

from repro.inject.sites import (
    Site,
    enumerate_sites,
    mapped_out_blocks,
    site_inert,
)
from repro.inject.arena import SnapshotArena
from repro.inject.goldencache import (
    GOLDEN_CACHE_VERSION,
    golden_cache_path,
    golden_key,
    load_golden,
    store_golden,
)
from repro.inject.models import FaultSpec, FaultyArchState, sample_faults
from repro.inject.profiler import SiteProfile
from repro.inject.harness import (
    FirstEffect,
    GoldenRun,
    InjectionResult,
    ReplaySession,
    first_effect_scan,
    hang_budget,
    run_golden,
    run_with_fault,
    synth_never_result,
)
from repro.inject.campaign import (
    InjectionSpec,
    InjectionStats,
    masking_validation,
    prepare_injection,
    run_injection,
)

__all__ = [
    "FaultSpec",
    "FaultyArchState",
    "FirstEffect",
    "GOLDEN_CACHE_VERSION",
    "GoldenRun",
    "InjectionResult",
    "InjectionSpec",
    "InjectionStats",
    "ReplaySession",
    "Site",
    "SiteProfile",
    "SnapshotArena",
    "enumerate_sites",
    "first_effect_scan",
    "golden_cache_path",
    "golden_key",
    "hang_budget",
    "load_golden",
    "mapped_out_blocks",
    "masking_validation",
    "prepare_injection",
    "run_golden",
    "run_injection",
    "run_with_fault",
    "sample_faults",
    "site_inert",
    "synth_never_result",
]
