"""Injection-site enumeration with ICI-block ownership.

A :class:`Site` names one bit-addressable field of one physical storage
slot in the core — a ROB entry's done bit, an issue-queue slot's source
tag, a physical register's data word, a rename-map entry, a fetch way's
PC latch.  Each site belongs to exactly one ICI block of the fault map
(``<dimension>.<half>`` for the six halvable dimensions, ``chipkill``
for structures whose loss kills the core: ROB, rename, the compaction
latches).  That ownership is what lets a campaign be conditioned on the
fault map: a fault sited in a mapped-out block must be masked.

Physical slot identity follows the queues' compaction order, which the
simulator keeps implicitly (entry lists are age-ordered):

- segmented issue queue: old-segment entries occupy half-0 slots
  ``[0, size/2)``, new-segment entries half-1 slots ``[size/2, size)``,
  compaction-latch entries the buffer slots past the halves (chipkill);
  a degraded queue (one half mapped out) packs into half 0;
- LSQ: list position; slots ``[size/2, size)`` are half 1;
- physical register files: low half belongs to backend group 0, high
  half to group 1 (degraded backends allocate only from the low half);
- fetch: ways ``[0, width/2)`` are frontend group 0, the rest group 1;
- ROB slot = sequence number mod ``rob_size``.

Site enumeration depends only on ``CoreParams`` (structure sizes do not
shrink under degradation — the silicon is still there, just mapped out),
so the same site universe is valid for every configuration of a core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cpu.archstate import preg_count, preg_tag_bits
from repro.cpu.params import MachineConfig
from repro.yieldmodel.configs import CoreCounts

#: Chipkill block name (ROB, rename map, compaction latches).
CHIPKILL = "chipkill"


@dataclass(frozen=True)
class Site:
    """One injectable storage field: ``struct[index].field`` in ``block``."""

    struct: str  # rob | iq_int | iq_fp | lsq | prf_int | prf_fp |
    #              rmap_int | rmap_fp | fetch
    index: int  # slot / register / way number
    field: str  # done | dest | ready | src | addr | data | tag | pc
    block: str  # owning ICI block, e.g. "iq_int.1", "chipkill"

    @property
    def label(self) -> str:
        return f"{self.struct}[{self.index}].{self.field}"

    def to_json(self) -> Dict[str, object]:
        return {
            "struct": self.struct,
            "index": self.index,
            "field": self.field,
            "block": self.block,
        }

    @classmethod
    def from_json(cls, d: Dict[str, object]) -> "Site":
        return cls(
            str(d["struct"]), int(d["index"]), str(d["field"]),
            str(d["block"]),
        )


def field_width(site: Site, config: MachineConfig) -> int:
    """Bit width of a site's field (the fault model flips within it)."""
    tag = preg_tag_bits(config.core)
    return {
        "done": 1,
        "ready": 1,
        "dest": 5,  # architectural destination tag
        "src": tag,
        "tag": tag,
        "addr": 16,  # LSQ block-address CAM field
        "data": 64,
        "pc": 16,
    }[site.field]


def enumerate_sites(config: MachineConfig) -> List[Site]:
    """All injectable sites of a core, in a canonical deterministic order."""
    core = config.core
    sites: List[Site] = []
    for i in range(core.rob_size):
        sites.append(Site("rob", i, "done", CHIPKILL))
        sites.append(Site("rob", i, "dest", CHIPKILL))
    for struct, size in (
        ("iq_int", core.iq_int_size), ("iq_fp", core.iq_fp_size)
    ):
        half = size // 2
        n_slots = size + (config.compaction_buffer if config.rescue else 0)
        for i in range(n_slots):
            if i >= size:
                block = CHIPKILL  # the temporary compaction latch
            else:
                block = f"{struct}.{0 if i < half else 1}"
            sites.append(Site(struct, i, "ready", block))
            sites.append(Site(struct, i, "src", block))
    lhalf = core.lsq_size // 2
    for i in range(core.lsq_size):
        sites.append(Site("lsq", i, "addr", f"lsq.{0 if i < lhalf else 1}"))
    n_pregs = preg_count(core)
    phalf = n_pregs // 2
    for struct, dim in (("prf_int", "int_backend"), ("prf_fp", "fp_backend")):
        for i in range(n_pregs):
            sites.append(
                Site(struct, i, "data", f"{dim}.{0 if i < phalf else 1}")
            )
    for struct in ("rmap_int", "rmap_fp"):
        for i in range(32):
            sites.append(Site(struct, i, "tag", CHIPKILL))
    whalf = core.width // 2
    for way in range(core.width):
        sites.append(
            Site("fetch", way, "pc", f"frontend.{0 if way < whalf else 1}")
        )
    return sites


def site_inert(site: Site, config: MachineConfig) -> bool:
    """True when ``config`` can never place live state under this site.

    A mapped-out structure half is still physical silicon, but no
    occupant, allocation, or fetch ever reaches it: a degraded segmented
    queue packs into half 0 (slots at or past the half — including the
    compaction-latch slots — resolve to no occupant), a degraded backend
    allocates registers only from the low half of the file, a degraded
    LSQ never grows past its halved capacity, and ways at or past
    ``fetch_width`` never fetch.  A fault confined to such a site can
    never touch reachable state, which is what licenses the injection
    harness's reconvergence early-exit even for stuck-ats: the fault
    keeps re-applying, but only to dead silicon.

    ROB and rename-map sites are never inert (chipkill structures stay
    fully live in every configuration).
    """
    core = config.core
    struct = site.struct
    if struct == "fetch":
        return site.index >= config.fetch_width
    if struct in ("iq_int", "iq_fp"):
        halves = (
            config.iq_int_halves if struct == "iq_int"
            else config.iq_fp_halves
        )
        if halves == 2:
            return False
        half = (
            core.iq_int_size if struct == "iq_int" else core.iq_fp_size
        ) // 2
        return site.index >= half
    if struct == "lsq":
        return site.index >= config.lsq_size
    if struct in ("prf_int", "prf_fp"):
        groups = (
            config.int_backend_groups if struct == "prf_int"
            else config.fp_backend_groups
        )
        if groups == 2:
            return False
        return site.index >= preg_count(core) // 2
    return False


def mapped_out_blocks(counts: CoreCounts) -> Tuple[str, ...]:
    """ICI blocks the fault map has isolated (half 1 of degraded dims)."""
    out = []
    for dim in (
        "frontend", "int_backend", "fp_backend", "iq_int", "iq_fp", "lsq"
    ):
        if getattr(counts, dim) == 1:
            out.append(f"{dim}.1")
    return tuple(out)


def sites_in_blocks(
    sites: List[Site], blocks: Tuple[str, ...]
) -> List[Site]:
    """Subset of ``sites`` owned by the given blocks (order preserved)."""
    wanted = set(blocks)
    return [s for s in sites if s.block in wanted]
