"""Fault models: transient bit flips and sticky stuck-ats.

A :class:`FaultSpec` fixes everything about one injection — the site,
the kind, the bit position, the stuck-at polarity, and the activation
cycle — so a fault is replayable bit-for-bit in any process.

:class:`FaultyArchState` applies the fault through the architectural
state layer's hooks.  Transients activate exactly once at their cycle;
stuck-ats force the bit every cycle from their cycle onward (cycle 0 for
manufacturing defects — campaign sampling always uses 0 so a stuck-at
models the paper's hard-defect scenario).  A fault whose site holds no
occupant at activation (an empty queue slot, an unallocated register)
simply does nothing — that run is masked, which is itself part of the
taxonomy's derating.

Fault semantics per site field:

- ``rob.done`` — stuck-at-0 pins a ROB slot not-done (the occupant can
  never commit → hang); forcing it set commits a never-executed
  instruction → the ``commit.unwritten`` checker detects it.
- ``rob.dest`` — corrupts the architectural destination tag → the value
  retires to the wrong register → SDC.
- ``iq.ready`` — forcing ready issues an instruction before its
  operands arrive (stale register read → SDC); stuck-at-0 starves the
  slot (hang when the occupant is at the commit head).
- ``iq.src`` — flips a bit of the captured source register tag →
  reads the wrong physical register → SDC or a ``tag.range`` detection.
- ``lsq.addr`` — corrupts the block-address CAM field → wrong
  store-to-load forwarding decision → SDC.
- ``prf.data`` / ``rmap.tag`` / ``fetch.pc`` — direct state corruption;
  rename-map corruption can also double-free a register (detected).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cpu.archstate import ArchState
from repro.cpu.isa import Instr
from repro.cpu.params import MachineConfig
from repro.cpu.queues import SegmentedIssueQueue
from repro.inject.sites import Site, field_width
from repro.runner.seeding import derive_seed

KINDS = ("transient", "stuckat")


@dataclass(frozen=True)
class FaultSpec:
    """One fully-determined fault injection."""

    site: Site
    kind: str  # "transient" | "stuckat"
    bit: int
    value: int  # stuck-at polarity (ignored for transients)
    cycle: int  # activation cycle (transient: exactly; stuckat: onward)

    @property
    def label(self) -> str:
        if self.kind == "transient":
            return f"{self.site.label} flip b{self.bit}@{self.cycle}"
        return f"{self.site.label} sa{self.value} b{self.bit}"

    def to_json(self) -> Dict[str, object]:
        return {
            "site": self.site.to_json(),
            "kind": self.kind,
            "bit": self.bit,
            "value": self.value,
            "cycle": self.cycle,
        }

    @classmethod
    def from_json(cls, d: Dict[str, object]) -> "FaultSpec":
        return cls(
            Site.from_json(d["site"]), str(d["kind"]), int(d["bit"]),
            int(d["value"]), int(d["cycle"]),
        )


def _weighted_choice(rng: random.Random, pool: List[Site], profile) -> Site:
    """Pick a site from ``pool`` with probability proportional to its
    profiled residency (+1 smoothing so cold sites stay reachable)."""
    weights = [profile.residency(s.struct, s.index) + 1 for s in pool]
    total = sum(weights)
    x = rng.random() * total
    acc = 0
    for site, w in zip(pool, weights):
        acc += w
        if x < acc:
            return site
    return pool[-1]


def sample_faults(
    sites: List[Site],
    n: int,
    seed: int,
    model: str,
    config: MachineConfig,
    golden_cycles: int,
    mode: str = "uniform",
    profile=None,
) -> List[FaultSpec]:
    """Draw ``n`` faults deterministically (one seed stream per index).

    Sampling is stratified by structure (pick a structure uniformly,
    then a site within it) so small structures with few sites — fetch
    latches, rename maps — are exercised as often as the big register
    files.  Transient activation cycles are drawn as a fraction of the
    golden run length (the middle three quarters), so the same seed
    lands faults at comparable execution phases on any configuration.

    ``mode="weighted"`` keeps the uniform structure pick (the stratified
    per-index ``derive_seed`` streams are unchanged) but draws the site
    *within* the structure proportional to its residency in the given
    :class:`~repro.inject.profiler.SiteProfile` — faults land where
    state actually lives.  The default stays uniform.
    """
    if model not in KINDS and model != "both":
        raise ValueError(f"unknown fault model {model!r}")
    if mode not in ("uniform", "weighted"):
        raise ValueError(f"unknown sampling mode {mode!r}")
    if mode == "weighted" and profile is None:
        raise ValueError("weighted sampling needs a SiteProfile")
    by_struct: Dict[str, List[Site]] = {}
    for s in sites:
        by_struct.setdefault(s.struct, []).append(s)
    structs = sorted(by_struct)
    if not structs:
        raise ValueError("no sites to sample from")
    faults = []
    for i in range(n):
        rng = random.Random(derive_seed(seed, i, "inject.fault"))
        pool = by_struct[structs[rng.randrange(len(structs))]]
        if mode == "weighted":
            site = _weighted_choice(rng, pool, profile)
        else:
            site = pool[rng.randrange(len(pool))]
        if model == "both":
            kind = KINDS[rng.randrange(2)]
        else:
            kind = model
        bit = rng.randrange(field_width(site, config))
        value = rng.randrange(2)
        if kind == "stuckat":
            cycle = 0
        else:
            frac = 0.125 + 0.75 * rng.random()
            cycle = max(1, int(frac * golden_cycles))
        faults.append(FaultSpec(site, kind, bit, value, cycle))
    return faults


class FaultyArchState(ArchState):
    """ArchState subclass that corrupts state per one :class:`FaultSpec`.

    **``forced_ready`` aliasing.**  The core captures a reference to
    this set at construction (``Core._forced``) and never re-reads the
    attribute, so the set must only ever be mutated in place — cleared
    at the top of every cycle by :meth:`begin_cycle` and by the
    restore/rearm paths — never reassigned.  This matters for warm-core
    group reuse: a fault that forced an issue-queue entry ready leaves
    its sequence numbers in the shared set when the run stops, and the
    next fault on the same restored core must not inherit them.
    :meth:`reset_run` relies on the in-place clear to discharge them
    (regression-tested in ``tests/test_grouped_replay.py``).
    """

    def __init__(
        self,
        config: MachineConfig,
        fault: FaultSpec,
        golden_log: Optional[list] = None,
    ) -> None:
        super().__init__(config)
        self.fault = fault
        self.golden_log = golden_log
        self.armed = False
        self.armed_cycle: Optional[int] = None
        self.armed_commits = 0
        core = config.core
        self._iq_half = {
            "iq_int": core.iq_int_size // 2,
            "iq_fp": core.iq_fp_size // 2,
        }
        self._rob_size = core.rob_size

    def reset_run(self, fault: FaultSpec) -> None:
        """Re-target this observer at a new fault (warm-core reuse).

        Clears every per-run harness field — arming state, stop/outcome
        latches, divergence bookkeeping — and the shared
        ``forced_ready`` set (in place; the core aliases it).  Machine
        state itself is reverted separately by
        :meth:`~repro.cpu.pipeline.Core.rearm`.
        """
        self.fault = fault
        self.armed = False
        self.armed_cycle = None
        self.armed_commits = 0
        self.stopped = False
        self.outcome = None
        self.detect_reason = None
        self.detect_cycle = None
        self.first_divergence = None
        self.forced_ready.clear()

    def prearm_sticky(self, cycle: int = 0, commits: int = 0) -> None:
        """Restore a sticky fault's arming bookkeeping on a forked core.

        A non-fetch stuck-at with activation cycle 0 arms
        unconditionally on the very first ``begin_cycle`` — before
        occupant resolution — so a from-scratch run always reports
        ``armed_cycle = armed_commits = 0``; a fetch stuck-at arms at
        its first fetch through the faulted way, which the first-effect
        scan observes.  A run forked past the arming point must report
        the same values, or detection latencies and corruption
        distances would shift by the fork cycle.
        """
        self.armed = True
        self.armed_cycle = cycle
        self.armed_commits = commits

    # ------------------------------------------------------------------
    def _active(self, cycle: int) -> bool:
        if self.fault.kind == "transient":
            return cycle == self.fault.cycle
        return cycle >= self.fault.cycle

    def _arm(self, cycle: int) -> None:
        if not self.armed:
            self.armed = True
            self.armed_cycle = cycle
            self.armed_commits = self.commits

    def _bits(self, value: int) -> int:
        f = self.fault
        if f.kind == "transient":
            return value ^ (1 << f.bit)
        return (value & ~(1 << f.bit)) | (f.value << f.bit)

    # ---- occupant resolution -----------------------------------------
    def _rob_entry(self, core, slot: int):
        rob = core.rob
        if not rob:
            return None
        head = rob[0].instr.seq
        seq = head + ((slot - head) % self._rob_size)
        if seq >= head + len(rob):
            return None
        return core._rob_index.get(seq)

    def _iq_entry(self, core, struct: str, slot: int):
        queue = core.iq_int if struct == "iq_int" else core.iq_fp
        half = self._iq_half[struct]
        if isinstance(queue, SegmentedIssueQueue):
            if queue.halves == 1:
                if slot >= half:
                    return None  # half 1 / latch slots are mapped out
                seg, idx = queue._seg("old"), slot
            elif slot < half:
                seg, idx = queue._seg("old"), slot
            elif slot < 2 * half:
                seg, idx = queue._seg("new"), slot - half
            else:
                seg, idx = queue._seg("buf"), slot - 2 * half
        else:
            seg, idx = queue.entries, slot
        return seg[idx] if 0 <= idx < len(seg) else None

    # ---- hook overrides ----------------------------------------------
    def begin_cycle(self, core, cycle: int) -> None:
        if self.forced_ready:
            self.forced_ready.clear()
        if self.stopped or not self._active(cycle):
            return
        site = self.fault.site
        struct = site.struct
        if struct == "fetch":
            return  # applied in on_fetch
        self._arm(cycle)
        if struct == "rob":
            entry = self._rob_entry(core, site.index)
            if entry is None:
                return
            if site.field == "done":
                if self.fault.kind == "transient":
                    entry.done = None if entry.done is not None else cycle
                elif self.fault.value == 0:
                    entry.done = None
                elif entry.done is None or entry.done > cycle:
                    entry.done = cycle
            else:  # dest
                info = self.info.get(entry.instr.seq)
                if info is not None and info.a_d is not None:
                    info.a_d = self._bits(info.a_d) & 0x1F
        elif struct in ("iq_int", "iq_fp"):
            e = self._iq_entry(core, struct, site.index)
            if e is None:
                return
            if site.field == "ready":
                forced_set = (
                    self.fault.kind == "transient" or self.fault.value == 1
                )
                if forced_set:
                    e.blocked_until = 0
                    self.forced_ready.add(e.instr.seq)
                else:
                    e.blocked_until = max(e.blocked_until, cycle + 1)
            else:  # src
                info = self.info.get(e.instr.seq)
                if info is not None and info.srcs:
                    cls, p = info.srcs[0]
                    if cls >= 0:
                        info.srcs[0] = (cls, self._bits(p))
        elif struct == "lsq":
            entries = core.lsq.entries
            if site.index < len(entries):
                seq, is_store, blk = entries[site.index]
                entries[site.index] = (seq, is_store, self._bits(blk))
        elif struct in ("prf_int", "prf_fp"):
            cls = 0 if struct == "prf_int" else 1
            idx = site.index
            j = self._jprf
            if j is not None and (cls, idx) not in j:
                # Fault writes journal like regular writes so a grouped
                # rearm (warm-core reuse) can undo the corruption.
                j[(cls, idx)] = self.prf[cls][idx]
            self.prf[cls][idx] = self._bits(self.prf[cls][idx])
        elif struct in ("rmap_int", "rmap_fp"):
            cls = 0 if struct == "rmap_int" else 1
            cur = self.rmap[cls][site.index]
            if cur is not None:
                self.rmap[cls][site.index] = self._bits(cur)

    def on_fetch(self, core, instr: Instr, way: int, cycle: int) -> Instr:
        f = self.fault
        if (
            f.site.struct != "fetch"
            or way != f.site.index
            or self.stopped
            or not self._active(cycle)
        ):
            return instr
        self._arm(cycle)
        pc = self._bits(instr.pc)
        if pc == instr.pc:
            return instr
        return Instr(
            instr.seq, instr.op, pc, instr.deps, instr.addr,
            instr.taken, instr.target,
        )
