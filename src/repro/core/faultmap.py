"""The fault-map register and the degraded configurations it encodes.

Section 4 of the paper: each core carries a one-fault-map register of
``2n + 4`` bits for an n-wide machine — one frontend bit and one backend
bit per way, plus two bits for the issue-queue halves and two for the
load/store-queue halves.  After test, the bits are blown into fuses; at
run time every stage masks out inputs from blocks the register marks
faulty and the routing stages steer instructions around them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class DegradedConfig:
    """Operable resource counts derived from a fault map.

    ``ok`` means the core is operational at all: at least one frontend
    way, one backend way, one issue-queue half, and one LSQ half (paper
    Section 4, Figure 5).
    """

    frontend_ways: int
    backend_ways: int
    iq_halves: int
    lsq_halves: int
    width: int

    @property
    def ok(self) -> bool:
        """Core operational: at least one survivor in every dimension."""
        return (
            self.frontend_ways >= 1
            and self.backend_ways >= 1
            and self.iq_halves >= 1
            and self.lsq_halves >= 1
        )

    @property
    def is_full(self) -> bool:
        """No degradation at all."""
        return (
            self.frontend_ways == self.width
            and self.backend_ways == self.width
            and self.iq_halves == 2
            and self.lsq_halves == 2
        )

    def describe(self) -> str:
        """Human-readable resource summary."""
        if not self.ok:
            return "dead"
        return (
            f"fe={self.frontend_ways}/{self.width} "
            f"be={self.backend_ways}/{self.width} "
            f"iq={self.iq_halves}/2 lsq={self.lsq_halves}/2"
        )


class FaultMapRegister:
    """The 2n+4-bit fault map of one core (1 = block faulty)."""

    def __init__(self, width: int = 4) -> None:
        if width < 1:
            raise ValueError("machine width must be >= 1")
        self.width = width
        self.frontend = [False] * width
        self.backend = [False] * width
        self.iq = [False, False]  # old half, new half
        self.lsq = [False, False]

    # ------------------------------------------------------------------
    @property
    def n_bits(self) -> int:
        """The paper's 2n+4."""
        return 2 * self.width + 4

    def mark_faulty(self, block: str) -> None:
        """Mark a block faulty by name.

        Names: ``frontend<i>``, ``backend<i>``, ``iq_old``, ``iq_new``,
        ``lsq0``, ``lsq1``.
        """
        if block.startswith("frontend"):
            self.frontend[self._way(block, "frontend")] = True
        elif block.startswith("backend"):
            self.backend[self._way(block, "backend")] = True
        elif block == "iq_old":
            self.iq[0] = True
        elif block == "iq_new":
            self.iq[1] = True
        elif block in ("lsq0", "lsq1"):
            self.lsq[int(block[-1])] = True
        else:
            raise ValueError(f"unknown block {block!r}")

    def _way(self, block: str, prefix: str) -> int:
        way = int(block[len(prefix):])
        if not (0 <= way < self.width):
            raise ValueError(f"way out of range in {block!r}")
        return way

    # ------------------------------------------------------------------
    def to_bits(self) -> List[int]:
        """Fuse encoding: fe ways, be ways, iq halves, lsq halves."""
        bits = [int(b) for b in self.frontend]
        bits += [int(b) for b in self.backend]
        bits += [int(b) for b in self.iq]
        bits += [int(b) for b in self.lsq]
        assert len(bits) == self.n_bits
        return bits

    @classmethod
    def from_bits(cls, bits: Sequence[int], width: int = 4) -> "FaultMapRegister":
        reg = cls(width)
        if len(bits) != reg.n_bits:
            raise ValueError(
                f"need {reg.n_bits} bits for width {width}, got {len(bits)}"
            )
        reg.frontend = [bool(b) for b in bits[:width]]
        reg.backend = [bool(b) for b in bits[width: 2 * width]]
        reg.iq = [bool(b) for b in bits[2 * width: 2 * width + 2]]
        reg.lsq = [bool(b) for b in bits[2 * width + 2:]]
        return reg

    # ------------------------------------------------------------------
    def degraded_config(self) -> DegradedConfig:
        """Resource counts the pipeline runs with (Section 4.1.3)."""
        return DegradedConfig(
            frontend_ways=self.frontend.count(False),
            backend_ways=self.backend.count(False),
            iq_halves=self.iq.count(False),
            lsq_halves=self.lsq.count(False),
            width=self.width,
        )

    def working_frontend_ways(self) -> List[int]:
        """Indices the fetch routing stage may steer instructions to
        (Section 4.2: earliest instruction to the first fault-free way)."""
        return [i for i, bad in enumerate(self.frontend) if not bad]

    def working_backend_ways(self) -> List[int]:
        """Backend way indices the issue router may use."""
        return [i for i, bad in enumerate(self.backend) if not bad]

    def route_frontend(self, n_fetched: int) -> List[Tuple[int, int]]:
        """Map fetched instruction slots to fault-free frontend ways.

        Returns (instruction index, way) pairs in program order; callers
        stall fetch and call again for instructions beyond the working
        width (the paper's function (2) of the routing stage).
        """
        ways = self.working_frontend_ways()
        return [(i, ways[i]) for i in range(min(n_fetched, len(ways)))]
