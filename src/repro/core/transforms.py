"""The ICI transformations (paper Section 3.2).

Each transformation takes a :class:`ComponentGraph` and returns a new graph
plus a :class:`TransformRecord` carrying its cost:

- :func:`cycle_split` — turn an intra-cycle edge into a latched one at the
  price of a pipeline stage (Figure 3a→3b),
- :func:`privatize` — duplicate a component so reader groups stop sharing
  it, at the price of area (Figure 3a→3c; partial privatization is the
  multi-reader-per-copy case of the same call),
- :func:`dependence_rotation` — rotate the pipeline latch around a
  single-stage loop so the hard violation moves somewhere privatization
  can fix, at no latency/area price (Figure 4a→4b),
- :func:`duplicate` — full privatization with each copy re-homed into its
  reader's map-out group (the repair planner's one-call form of the
  paper's rename-table fix),
- :func:`buffer` — stage an intra-cycle edge through a small latched
  buffer component owned by the producer's group (a cycle split that
  pays area to keep the producer's outputs observable at the boundary).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.component import (
    ComponentGraph,
    Edge,
    EdgeKind,
    LogicComponent,
)


@dataclass
class TransformRecord:
    """Cost and bookkeeping of one applied transformation."""

    kind: str
    target: str
    extra_latency: int = 0
    extra_area: float = 0.0
    new_components: List[str] = field(default_factory=list)
    note: str = ""


def cycle_split(
    graph: ComponentGraph,
    src: str,
    dst: str,
    adds_pipeline_stage: bool = True,
) -> Tuple[ComponentGraph, TransformRecord]:
    """Split the intra-cycle edge ``src -> dst`` across a pipeline latch.

    Args:
        graph: input design (not mutated).
        src, dst: endpoints of an existing COMB edge.
        adds_pipeline_stage: False when the split rides an existing latch
            boundary and costs no depth (e.g. the paper's inter-segment
            compaction, which "does not increase the pipeline depth").

    Returns:
        (new graph, record).  The record charges one stage of latency on
        the ``dst`` path when a stage is added.
    """
    edge = Edge(src, dst, EdgeKind.COMB)
    if edge not in graph.edges:
        raise ValueError(f"no intra-cycle edge {src} -> {dst}")
    g = graph.copy()
    g.edges.discard(edge)
    g.edges.add(Edge(src, dst, EdgeKind.LATCH))
    latency = 1 if adds_pipeline_stage else 0
    if latency:
        g.extra_latency[dst] = g.extra_latency.get(dst, 0) + 1
    rec = TransformRecord(
        kind="cycle_split",
        target=f"{src}->{dst}",
        extra_latency=latency,
    )
    g.transform_log.append(f"cycle_split {src}->{dst} (+{latency} stage)")
    return g, rec


def privatize(
    graph: ComponentGraph,
    target: str,
    reader_groups: Sequence[Sequence[str]],
    copy_area_factor: float = 1.0,
) -> Tuple[ComponentGraph, TransformRecord]:
    """Replicate ``target`` so each reader group reads a private copy.

    Full privatization passes one reader per group; *partial* privatization
    (Section 3.2.2's LCA/LCB example) passes several readers per group,
    trading isolation granularity for area.

    Args:
        graph: input design (not mutated).
        target: the shared component to replicate.
        reader_groups: disjoint groups covering every intra-cycle reader of
            ``target``; group *i* reads copy *i*.
        copy_area_factor: area of each copy relative to the original (the
            paper's half-ported rename-table copies cost 0.75 each, i.e.
            "50% more area" total for two copies).

    Returns:
        (new graph, record).  Copies are named ``{target}#i`` and inherit
        the original's inbound edges; the original is removed.
    """
    if target not in graph.components:
        raise KeyError(f"unknown component {target!r}")
    comb_readers = set(graph.readers_of(target, EdgeKind.COMB))
    listed = [r for grp in reader_groups for r in grp]
    if len(set(listed)) != len(listed):
        raise ValueError("reader groups overlap")
    if set(listed) != comb_readers:
        raise ValueError(
            f"reader groups {sorted(listed)} must cover exactly the "
            f"intra-cycle readers {sorted(comb_readers)}"
        )
    orig = graph.components[target]
    g = graph.copy()
    del g.components[target]
    inbound = [e for e in graph.edges if e.dst == target]
    outbound = [e for e in graph.edges if e.src == target]
    for e in inbound + outbound:
        g.edges.discard(e)

    copies: List[str] = []
    for i, grp in enumerate(reader_groups):
        cname = f"{target}#{i}"
        g.components[cname] = LogicComponent(
            name=cname,
            area=orig.area * copy_area_factor,
            kind=orig.kind,
            group=orig.group,
        )
        copies.append(cname)
        for e in inbound:
            g.edges.add(Edge(e.src, cname, e.kind))
        for reader in grp:
            g.edges.add(Edge(cname, reader, EdgeKind.COMB))
    # Latched readers keep working off copy 0 (any copy is equivalent
    # across a latch; isolation is unaffected).
    for e in outbound:
        if e.kind is EdgeKind.LATCH:
            g.edges.add(Edge(copies[0], e.dst, EdgeKind.LATCH))
    extra_area = orig.area * (copy_area_factor * len(reader_groups) - 1.0)
    rec = TransformRecord(
        kind="privatize",
        target=target,
        extra_area=extra_area,
        new_components=copies,
        note=f"{len(reader_groups)} copies, factor {copy_area_factor}",
    )
    g.transform_log.append(
        f"privatize {target} into {len(copies)} copies "
        f"(+{extra_area:.2f} area)"
    )
    return g, rec


def duplicate(
    graph: ComponentGraph,
    target: str,
    copy_area_factor: float = 1.0,
) -> Tuple[ComponentGraph, TransformRecord]:
    """Give every intra-cycle reader of ``target`` a private copy in its
    own map-out group.

    :func:`privatize` replicates a component but leaves the copies in the
    original's group, which discharges *sharing* but not a cross-group
    read: a reader in group G still reads a copy homed elsewhere.  This
    transformation finishes the job — copy *i* moves into reader *i*'s
    group, so every intra-cycle edge into the copies stays inside one
    group.  This is the one-call form of the paper's rename-table fix
    (one half-table per cluster, owned by that cluster).

    Args:
        graph: input design (not mutated).
        target: the shared component to replicate; must have at least one
            intra-cycle reader.
        copy_area_factor: area of each copy relative to the original.

    Returns:
        (new graph, record).  Copies are named ``{target}#i`` in sorted
        reader order.
    """
    readers = graph.readers_of(target, EdgeKind.COMB)
    if not readers:
        raise ValueError(f"{target!r} has no intra-cycle readers")
    g, prec = privatize(
        graph, target, [[r] for r in readers], copy_area_factor
    )
    for i, reader in enumerate(readers):
        g.set_group(f"{target}#{i}", graph.components[reader].group)
    rec = TransformRecord(
        kind="duplicate",
        target=target,
        extra_area=prec.extra_area,
        new_components=prec.new_components,
        note=f"{len(readers)} per-reader copies, factor {copy_area_factor}",
    )
    g.transform_log[-1] = (
        f"duplicate {target} into {len(readers)} per-reader copies "
        f"(+{prec.extra_area:.2f} area)"
    )
    return g, rec


def buffer(
    graph: ComponentGraph,
    src: str,
    dst: str,
    buffer_area: float = 1.0,
) -> Tuple[ComponentGraph, TransformRecord]:
    """Stage the intra-cycle edge ``src -> dst`` through a latched buffer.

    Like :func:`cycle_split` this costs a pipeline stage on the ``dst``
    path, but the latch lives in a new buffer component owned by the
    *producer's* group: the value crosses the group boundary through a
    latch written by ``src``'s side, so a failing buffer bit still
    implicates the producer.  Use it when the raw edge cannot simply be
    latched in place (e.g. ``dst`` re-derives the value combinationally
    and needs a stable staging point).

    Args:
        graph: input design (not mutated).
        src, dst: endpoints of an existing COMB edge.
        buffer_area: area of the staging component.

    Returns:
        (new graph, record).  The buffer is named ``{src}>{dst}.buf``.
    """
    edge = Edge(src, dst, EdgeKind.COMB)
    if edge not in graph.edges:
        raise ValueError(f"no intra-cycle edge {src} -> {dst}")
    bname = f"{src}>{dst}.buf"
    if bname in graph.components:
        raise ValueError(f"edge {src} -> {dst} already buffered")
    g = graph.copy()
    g.components[bname] = LogicComponent(
        name=bname,
        area=buffer_area,
        kind="logic",
        group=graph.components[src].group,
    )
    g.edges.discard(edge)
    g.edges.add(Edge(src, bname, EdgeKind.COMB))
    g.edges.add(Edge(bname, dst, EdgeKind.LATCH))
    g.extra_latency[dst] = g.extra_latency.get(dst, 0) + 1
    rec = TransformRecord(
        kind="buffer",
        target=f"{src}->{dst}",
        extra_latency=1,
        extra_area=buffer_area,
        new_components=[bname],
    )
    g.transform_log.append(
        f"buffer {src}->{dst} through {bname} "
        f"(+1 stage, +{buffer_area:.2f} area)"
    )
    return g, rec


def dependence_rotation(
    graph: ComponentGraph,
    around: Sequence[str],
    loop: Optional[Sequence[str]] = None,
) -> Tuple[ComponentGraph, TransformRecord]:
    """Rotate the pipeline latch around the components in ``around``.

    For every component C in ``around``: intra-cycle edges *into* C become
    latched (C now reads those signals from the pipeline latch) and latched
    edges *out of* C become intra-cycle (its former latch is gone; readers
    see it combinationally).  This is Figure 4a→4b with ``around=[LCC]``.

    Args:
        graph: input design (not mutated).
        around: components the latch rotates around.
        loop: when given, only edges whose other endpoint lies in ``loop``
            participate — the rotation is local to that single-stage loop
            and edges leaving the loop (e.g. issued instructions heading to
            the backend) keep their latches.

    Rotation adds no logic and no latency — it only moves the latch — but
    it must not create a combinational loop; that is validated here.
    """
    for name in around:
        if name not in graph.components:
            raise KeyError(f"unknown component {name!r}")
    targets = set(around)
    members = set(loop) if loop is not None else None
    g = graph.copy()

    def in_loop(other: str) -> bool:
        return members is None or other in members

    for e in list(g.edges):
        if (
            e.dst in targets
            and e.kind is EdgeKind.COMB
            and e.src not in targets
            and in_loop(e.src)
        ):
            g.edges.discard(e)
            g.edges.add(Edge(e.src, e.dst, EdgeKind.LATCH))
        elif (
            e.src in targets
            and e.kind is EdgeKind.LATCH
            and e.dst not in targets
            and in_loop(e.dst)
        ):
            g.edges.discard(e)
            g.edges.add(Edge(e.src, e.dst, EdgeKind.COMB))
    if not g.comb_is_acyclic():
        raise ValueError(
            f"rotating latch around {sorted(targets)} creates a "
            "combinational loop"
        )
    rec = TransformRecord(
        kind="dependence_rotation", target=",".join(sorted(targets))
    )
    g.transform_log.append(f"dependence_rotation around {sorted(targets)}")
    return g, rec
