"""Logic-component graphs (the abstraction of the paper's Figures 2-4).

A :class:`ComponentGraph` captures the only structural property ICI cares
about: which logic component reads which other component *within a cycle*
(a combinational edge) versus *across a latch* (an inter-cycle edge).
Primary inputs and outputs are modeled as components of kind ``port`` —
they are controlled/observed by the tester and never merge into
super-components.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Set, Tuple


class EdgeKind(enum.Enum):
    """How a value travels between components."""

    COMB = "comb"  # within a cycle — the communication ICI forbids
    LATCH = "latch"  # through a pipeline latch — always ICI-safe


@dataclass(frozen=True)
class LogicComponent:
    """A unit of logic at the isolation granularity.

    Attributes:
        name: unique id within the graph.
        area: relative area (feeds the yield model and transform costs).
        kind: ``logic`` (isolatable), ``memory`` (covered by BIST/ECC, e.g.
            caches), ``chipkill`` (non-redundant; a fault kills the core),
            or ``port`` (tester-controlled boundary).
        group: map-out group the component belongs to ("" = ungrouped).
    """

    name: str
    area: float = 1.0
    kind: str = "logic"
    group: str = ""


@dataclass(frozen=True)
class Edge:
    """A directed communication edge ``src -> dst``."""

    src: str
    dst: str
    kind: EdgeKind


class ComponentGraph:
    """Mutable component graph with copy-on-transform semantics."""

    def __init__(self, name: str = "design") -> None:
        self.name = name
        self.components: Dict[str, LogicComponent] = {}
        self.edges: Set[Edge] = set()
        # Latency bookkeeping: pipeline stages added by transformations.
        self.extra_latency: Dict[str, int] = {}
        self.transform_log: List[str] = []

    # ------------------------------------------------------------------
    def add(
        self,
        name: str,
        area: float = 1.0,
        kind: str = "logic",
        group: str = "",
    ) -> LogicComponent:
        """Add a component; names must be unique."""
        if name in self.components:
            raise ValueError(f"duplicate component {name!r}")
        comp = LogicComponent(name=name, area=area, kind=kind, group=group)
        self.components[name] = comp
        return comp

    def connect(
        self, src: str, dst: str, kind: EdgeKind = EdgeKind.COMB
    ) -> None:
        """Add an edge; both endpoints must exist."""
        for end in (src, dst):
            if end not in self.components:
                raise KeyError(f"unknown component {end!r}")
        self.edges.add(Edge(src, dst, kind))

    def connect_latched(self, src: str, dst: str) -> None:
        """Add an inter-cycle (through-a-latch) edge."""
        self.connect(src, dst, EdgeKind.LATCH)

    # ------------------------------------------------------------------
    def comb_edges(self) -> List[Edge]:
        """All intra-cycle edges (the ones ICI constrains)."""
        return [e for e in self.edges if e.kind is EdgeKind.COMB]

    def latch_edges(self) -> List[Edge]:
        """All inter-cycle edges."""
        return [e for e in self.edges if e.kind is EdgeKind.LATCH]

    def readers_of(self, name: str, kind: Optional[EdgeKind] = None) -> List[str]:
        """Components reading ``name``, optionally filtered by edge kind."""
        return sorted(
            e.dst
            for e in self.edges
            if e.src == name and (kind is None or e.kind is kind)
        )

    def sources_of(self, name: str, kind: Optional[EdgeKind] = None) -> List[str]:
        """Components feeding ``name``, optionally filtered by edge kind."""
        return sorted(
            e.src
            for e in self.edges
            if e.dst == name and (kind is None or e.kind is kind)
        )

    def logic_components(self) -> List[str]:
        """Names of isolatable (non-port, non-memory) components."""
        return sorted(
            c.name
            for c in self.components.values()
            if c.kind in ("logic", "chipkill")
        )

    def total_area(self, kinds: Iterable[str] = ("logic", "chipkill", "memory")) -> float:
        """Summed area of components of the given kinds."""
        wanted = set(kinds)
        return sum(
            c.area for c in self.components.values() if c.kind in wanted
        )

    # ------------------------------------------------------------------
    def set_group(self, name: str, group: str) -> None:
        """Assign a component to a map-out group."""
        self.components[name] = replace(self.components[name], group=group)

    def groups(self) -> Dict[str, List[str]]:
        """Map-out groups and their member components."""
        out: Dict[str, List[str]] = {}
        for c in self.components.values():
            out.setdefault(c.group, []).append(c.name)
        return {g: sorted(v) for g, v in out.items()}

    # ------------------------------------------------------------------
    def comb_is_acyclic(self) -> bool:
        """True when intra-cycle edges form a DAG (no combinational loop)."""
        adj: Dict[str, List[str]] = {}
        indeg: Dict[str, int] = {n: 0 for n in self.components}
        for e in self.comb_edges():
            adj.setdefault(e.src, []).append(e.dst)
            indeg[e.dst] += 1
        frontier = [n for n, d in indeg.items() if d == 0]
        seen = 0
        while frontier:
            n = frontier.pop()
            seen += 1
            for m in adj.get(n, []):
                indeg[m] -= 1
                if indeg[m] == 0:
                    frontier.append(m)
        return seen == len(self.components)

    def copy(self, name: Optional[str] = None) -> "ComponentGraph":
        """Deep-enough copy for copy-on-transform semantics."""
        g = ComponentGraph(name or self.name)
        g.components = dict(self.components)
        g.edges = set(self.edges)
        g.extra_latency = dict(self.extra_latency)
        g.transform_log = list(self.transform_log)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ComponentGraph {self.name}: {len(self.components)} components,"
            f" {len(self.comb_edges())} comb / {len(self.latch_edges())} "
            f"latch edges>"
        )
