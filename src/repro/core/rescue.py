"""Component-level model of the Rescue pipeline (paper Section 4).

:func:`build_baseline_graph` captures the intra-cycle communication of a
conventional 4-wide out-of-order superscalar — including every ICI
violation the paper calls out (compacting issue queue, selection-tree
roots, shared rename table, shared LSQ insertion).

:func:`build_rescue_graph` applies the paper's per-stage transformations,
in the paper's order, through the generic transform API:

=============  ===================================================
Stage          Transformation (paper section)
=============  ===================================================
fetch          routing stage with privatized mux controls (4.2)
decode         none needed — already ICI-compliant (4.3)
rename         partial privatization of the map table into two
               half-ported copies + cycle splitting of the table
               read (4.4)
issue          cycle splitting of inter-segment compaction,
               dependence rotation of the selection-tree root,
               privatization of broadcast/replay logic and of the
               post-issue routing muxes (4.1)
register read  two half-ported register-file copies (4.5)
execute        none needed — forwarding is inter-cycle (4.6)
memory         privatized LSQ insertion; search trees already
               cycle-split (4.7)
writeback      selectively disabled write ports (4.8)
commit         selectively disabled write ports (4.9)
=============  ===================================================

The resulting graph passes :func:`repro.core.checker.check_granularity`
against the half-pipeline map-out blocks; the baseline does not.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import dataclasses

from repro.core.component import ComponentGraph, Edge, EdgeKind
from repro.core.transforms import (
    TransformRecord,
    cycle_split,
    dependence_rotation,
    privatize,
)


def _rename_component(g: ComponentGraph, old: str, new: str) -> None:
    """Rename a component and every edge touching it, in place."""
    comp = g.components.pop(old)
    g.components[new] = dataclasses.replace(comp, name=new)
    g.edges = {
        Edge(
            new if e.src == old else e.src,
            new if e.dst == old else e.dst,
            e.kind,
        )
        for e in g.edges
    }

#: Issue queues modeled (the paper separates integer and floating point).
_QUEUES = ("iq_int", "iq_fp")


def rescue_map_out_groups(width: int = 4) -> Dict[str, str]:
    """Map-out block of every component, at the fault-map granularity.

    Blocks: ``frontend<g>`` and ``backend<g>`` for g in {0, 1} (two ways
    per group, matching the yield model's fault-equivalent groups),
    ``<queue>_old`` / ``<queue>_new`` halves, ``lsq<h>`` halves, and
    ``chipkill`` for the non-redundant logic.
    """
    groups: Dict[str, str] = {
        "fetch_pc": "chipkill",
        "commit": "chipkill",
    }
    for way in range(width):
        g = way // 2
        groups[f"route_fetch{way}"] = f"frontend{g}"
        groups[f"decode{way}"] = f"frontend{g}"
        groups[f"rename{way}"] = f"frontend{g}"
        groups[f"route_issue{way}"] = f"backend{g}"
        groups[f"exec{way}"] = f"backend{g}"
    for half in range(2):
        groups[f"rename_table#{half}"] = f"frontend{half}"
        groups[f"regfile#{half}"] = f"backend{half}"
        groups[f"lsq_half{half}"] = f"lsq{half}"
        groups[f"lsq_insert#{half}"] = f"lsq{half}"
        # Sub-trees searching half h in the first cycle lump with the half;
        # tree roots (second cycle) belong to the backend way using them.
        groups[f"lsq_treeA_sub{half}"] = f"lsq{half}"
        groups[f"lsq_treeB_sub{half}"] = f"lsq{half}"
        groups[f"lsq_treeA_root"] = "backend0"
        groups[f"lsq_treeB_root"] = "backend1"
    for q in _QUEUES:
        for half, tag in enumerate(("old", "new")):
            groups[f"{q}_{tag}"] = f"{q}_{tag}"
            groups[f"{q}_sel_{tag}"] = f"{q}_{tag}"
            groups[f"{q}_bcast#{half}"] = f"{q}_{tag}"
    # Pre-transformation (baseline-only) components map to themselves so
    # baseline violation reports are readable.
    groups["rename_table"] = "rename_table"
    groups["lsq_insert"] = "lsq_insert"
    for q in _QUEUES:
        groups[f"{q}_root"] = f"{q}_root"
    return groups


def build_baseline_graph(width: int = 4) -> ComponentGraph:
    """Intra-cycle communication graph of the conventional superscalar."""
    g = ComponentGraph("baseline")
    g.add("fetch_pc", kind="chipkill")
    g.add("icache", kind="memory", area=4.0)
    for way in range(width):
        g.add(f"decode{way}")
        g.add(f"rename{way}")
        g.add(f"exec{way}", area=2.0)
    g.add("rename_table", area=2.0)
    g.add("regfile", area=2.0)
    g.add("commit", kind="chipkill")

    # Frontend flow: i-cache feeds decoders across the fetch latch; decode
    # is parallel per way (ICI-compliant, Section 4.3).
    for way in range(width):
        g.connect_latched("icache", f"decode{way}")
        g.connect_latched(f"decode{way}", f"rename{way}")
    g.connect_latched("fetch_pc", "icache")

    # Rename: the single map table is read by every renamer in-cycle — the
    # Figure 3a violation (Section 4.4).  Hazard fixing is redundant and
    # parallel, so renamers do not read each other.
    for way in range(width):
        g.connect("rename_table", f"rename{way}", EdgeKind.COMB)
        g.connect_latched(f"rename{way}", "rename_table")  # writes at end

    # Issue queues: compacting halves with in-cycle inter-segment
    # compaction (violations 1 and 2 of Section 4.1.1) and a selection
    # root reading both halves' sub-trees (violation 3).
    for q in _QUEUES:
        g.add(f"{q}_old")
        g.add(f"{q}_new")
        g.add(f"{q}_sel_old")
        g.add(f"{q}_sel_new")
        g.add(f"{q}_root")
        g.connect(f"{q}_new", f"{q}_old", EdgeKind.COMB)  # compaction moves
        g.connect(f"{q}_old", f"{q}_new", EdgeKind.COMB)  # free-slot counts
        g.connect(f"{q}_old", f"{q}_sel_old", EdgeKind.COMB)
        g.connect(f"{q}_new", f"{q}_sel_new", EdgeKind.COMB)
        g.connect(f"{q}_sel_old", f"{q}_root", EdgeKind.COMB)
        g.connect(f"{q}_sel_new", f"{q}_root", EdgeKind.COMB)
        # Selected instructions latch at cycle end; broadcast next cycle.
        g.connect_latched(f"{q}_root", f"{q}_old")
        g.connect_latched(f"{q}_root", f"{q}_new")
        for way in range(width):
            g.connect_latched(f"rename{way}", f"{q}_new")
            g.connect_latched(f"{q}_root", f"exec{way}")

    # Register read and execute: reads/forwards cross latches (4.5, 4.6).
    for way in range(width):
        g.connect_latched("regfile", f"exec{way}")
        g.connect_latched(f"exec{way}", "regfile")
        g.connect_latched(f"exec{way}", "commit")
        for other in range(width):
            if other != way:
                g.connect_latched(f"exec{way}", f"exec{other}")  # forwarding

    # LSQ: halves, two pipelined search trees, single insertion logic that
    # writes both halves in-cycle (the Section 4.7 violation).
    g.add("lsq_insert")
    for half in range(2):
        g.add(f"lsq_half{half}")
        g.connect("lsq_insert", f"lsq_half{half}", EdgeKind.COMB)
    for tree, root_way in (("A", 0), ("B", 1)):
        g.add(f"lsq_tree{tree}_root")
        for half in range(2):
            g.add(f"lsq_tree{tree}_sub{half}")
            g.connect(
                f"lsq_half{half}", f"lsq_tree{tree}_sub{half}", EdgeKind.COMB
            )
            # Sub-tree results latch before the root (search is pipelined
            # across two cycles like an L1 access).
            g.connect_latched(
                f"lsq_tree{tree}_sub{half}", f"lsq_tree{tree}_root"
            )
        g.connect_latched(f"lsq_tree{tree}_root", f"exec{root_way}")
    for way in range(width):
        g.connect_latched(f"exec{way}", "lsq_insert")

    return g


def build_rescue_graph(
    width: int = 4,
) -> Tuple[ComponentGraph, List[TransformRecord]]:
    """Apply the paper's Section 4 transformations to the baseline.

    Returns the transformed graph and the list of transform records (their
    summed costs feed the area and latency accounting).
    """
    if width % 2:
        raise ValueError("Rescue models an even-width machine")
    g = build_baseline_graph(width)
    records: List[TransformRecord] = []

    def apply(result: Tuple[ComponentGraph, TransformRecord]) -> None:
        nonlocal g
        g, rec = result
        records.append(rec)

    # ---- Fetch (4.2): routing stage after fetch, one privatized mux
    # control per frontend way.  New stage => +1 frontend latency.
    for way in range(width):
        g.add(f"route_fetch{way}")
        g.connect_latched("icache", f"route_fetch{way}")
        g.connect_latched(f"route_fetch{way}", f"decode{way}")
        # The old direct i-cache -> decode path is replaced.
        g.edges = {
            e
            for e in g.edges
            if not (e.src == "icache" and e.dst == f"decode{way}")
        }
    g.extra_latency["frontend_route"] = 1
    g.transform_log.append("fetch routing stage added (+1 frontend stage)")

    # ---- Rename (4.4): partial privatization of the map table into two
    # half-ported copies (50% more total area), then cycle splitting of
    # the table read (one extra frontend stage; the three sibling edges
    # ride the same latch).
    halves = [
        [f"rename{way}" for way in range(width // 2)],
        [f"rename{way}" for way in range(width // 2, width)],
    ]
    apply(privatize(g, "rename_table", halves, copy_area_factor=0.75))
    first = True
    for half, readers in enumerate(halves):
        for reader in readers:
            apply(
                cycle_split(
                    g,
                    f"rename_table#{half}",
                    reader,
                    adds_pipeline_stage=first,
                )
            )
            first = False

    # ---- Issue (4.1): the transformation sequence of Section 4.1.2.
    # (1) + (2): cycle-split inter-segment compaction in both directions
    # for every queue first (the temporary latch costs no pipeline depth);
    # the rotation's loop check needs the whole graph free of intra-cycle
    # cycles.
    for q in _QUEUES:
        apply(cycle_split(g, f"{q}_new", f"{q}_old", adds_pipeline_stage=False))
        apply(cycle_split(g, f"{q}_old", f"{q}_new", adds_pipeline_stage=False))
    for q in _QUEUES:
        # (3): rotate the selection-tree root around the issue latch,
        # locally to the wakeup/select loop.  The root now reads the
        # per-half selections from a latch and drives broadcast/replay
        # combinationally — Figure 4a -> 4b.  Edges leaving the loop
        # (issued instructions heading to the backend) keep their latch.
        loop = [f"{q}_old", f"{q}_new", f"{q}_sel_old", f"{q}_sel_new"]
        apply(dependence_rotation(g, [f"{q}_root"], loop=loop))
        # The rotated root is the broadcast/replay logic; privatize one
        # copy per queue half — Figure 4b -> 4c / Figure 6.
        apply(privatize(g, f"{q}_root", [[f"{q}_old"], [f"{q}_new"]]))
        # Rename the copies to their microarchitectural identity.
        for half in range(2):
            _rename_component(g, f"{q}_root#{half}", f"{q}_bcast#{half}")

    # Post-issue routing stage (one privatized mux control per backend
    # way); +1 stage between issue and register read.
    for way in range(width):
        g.add(f"route_issue{way}")
        for q in _QUEUES:
            for half, tag in enumerate(("old", "new")):
                g.connect_latched(f"{q}_bcast#{half}", f"route_issue{way}")
            # Replace direct issue -> exec paths with the routed ones.
            g.edges = {
                e
                for e in g.edges
                if not (
                    e.src.startswith(f"{q}_bcast")
                    and e.dst == f"exec{way}"
                )
            }
        g.connect_latched(f"route_issue{way}", f"exec{way}")
    g.extra_latency["issue_route"] = 1
    g.transform_log.append("issue routing stage added (+1 issue-to-exec)")

    # ---- Register read (4.5): two half-ported copies; all edges already
    # cross latches, so privatization happens on latch readers — modeled
    # directly as two components replacing the original.
    regfile = g.components.pop("regfile")
    g.edges = {e for e in g.edges if "regfile" not in (e.src, e.dst)}
    for half in range(2):
        g.add(f"regfile#{half}", area=regfile.area * 0.75)
        for way in range(width):
            if way // 2 == half:
                g.connect_latched(f"regfile#{half}", f"exec{way}")
            g.connect_latched(f"exec{way}", f"regfile#{half}")
    g.transform_log.append("regfile split into two half-ported copies")

    # ---- Memory (4.7): privatize the insertion logic per LSQ half.
    apply(
        privatize(
            g, "lsq_insert", [["lsq_half0"], ["lsq_half1"]]
        )
    )

    # Attach map-out groups.
    groups = rescue_map_out_groups(width)
    for name in list(g.components):
        if name in groups:
            g.set_group(name, groups[name])
    g.name = "rescue"
    return g, records
