"""The ICI rule: super-components and granularity checking (Section 3).

The ICI rule states that a scan-detected fault is attributable to one and
only one element of a component set iff there is no intra-cycle
communication among the set.  Components connected by combinational edges
therefore merge into *super-components* — a fault observed downstream can
only be pinned to the super-component, not a member.  A design meets an
isolation granularity when every super-component lies inside a single
map-out group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set

from repro.core.component import ComponentGraph, Edge


def super_components(graph: ComponentGraph) -> List[FrozenSet[str]]:
    """Partition isolatable components into super-components.

    Two components belong to the same super-component when they are
    connected (in either direction) by a chain of intra-cycle edges: a
    fault in one can corrupt the other's outputs within the observation
    cycle, so scan-bit lookup cannot tell them apart (Figure 3c's shaded
    ovals).  Ports and BIST-covered memories never participate.
    """
    isolatable = set(graph.logic_components())
    parent: Dict[str, str] = {n: n for n in isolatable}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for e in graph.comb_edges():
        if e.src in isolatable and e.dst in isolatable:
            union(e.src, e.dst)
    groups: Dict[str, Set[str]] = {}
    for n in isolatable:
        groups.setdefault(find(n), set()).add(n)
    return sorted(
        (frozenset(g) for g in groups.values()),
        key=lambda s: sorted(s)[0],
    )


def ici_violations(
    graph: ComponentGraph, partition: Optional[Mapping[str, str]] = None
) -> List[Edge]:
    """Intra-cycle edges that break isolation at the given granularity.

    Args:
        graph: the design.
        partition: component → group map; defaults to each component's own
            ``group`` attribute.  An intra-cycle edge is a violation when
            its endpoints sit in different groups.

    Returns:
        The violating edges (empty when the design obeys ICI at this
        granularity).
    """
    part = _resolve_partition(graph, partition)
    bad = []
    for e in graph.comb_edges():
        if e.src not in part or e.dst not in part:
            continue  # ports and memories are boundary, never violations
        if part[e.src] != part[e.dst]:
            bad.append(e)
    return sorted(bad, key=lambda e: (e.src, e.dst))


@dataclass
class IciReport:
    """Result of a granularity check."""

    satisfied: bool
    super_components: List[FrozenSet[str]]
    violations: List[Edge]
    spanning: List[FrozenSet[str]] = field(default_factory=list)

    def describe(self) -> str:
        if self.satisfied:
            return (
                f"ICI satisfied: {len(self.super_components)} "
                "super-components, each within one map-out group"
            )
        lines = [
            f"ICI violated: {len(self.violations)} intra-cycle edges cross "
            f"group boundaries; {len(self.spanning)} super-components span "
            "groups"
        ]
        for e in self.violations[:10]:
            lines.append(f"  {e.src} -> {e.dst}")
        return "\n".join(lines)


def check_granularity(
    graph: ComponentGraph, partition: Optional[Mapping[str, str]] = None
) -> IciReport:
    """Check that faults isolate to single map-out groups.

    The paper's requirement 2 (Section 1): it must be possible to isolate
    faults to the precision of microarchitectural blocks.  Formally: every
    super-component must be a subset of one group, so that disabling the
    group containing *any* member removes the fault.
    """
    part = _resolve_partition(graph, partition)
    supers = super_components(graph)
    spanning = [
        s
        for s in supers
        if len({part[m] for m in s if m in part}) > 1
    ]
    violations = ici_violations(graph, partition)
    return IciReport(
        satisfied=not spanning,
        super_components=supers,
        violations=violations,
        spanning=spanning,
    )


def isolation_ambiguity(graph: ComponentGraph, component: str) -> FrozenSet[str]:
    """The set of components a fault in ``component`` may be blamed on.

    Under ICI this is the component's super-component; a singleton means
    perfect isolation.
    """
    for s in super_components(graph):
        if component in s:
            return s
    raise KeyError(f"{component!r} is not an isolatable component")


def _resolve_partition(
    graph: ComponentGraph, partition: Optional[Mapping[str, str]]
) -> Dict[str, str]:
    if partition is not None:
        return dict(partition)
    out: Dict[str, str] = {}
    for name in graph.logic_components():
        comp = graph.components[name]
        out[name] = comp.group or comp.name
    return out
