"""The paper's primary contribution: intra-cycle logic independence (ICI).

- :mod:`repro.core.component` — logic-component graphs with intra-cycle
  (combinational) vs inter-cycle (latched) edges,
- :mod:`repro.core.checker` — the ICI rule, super-component computation,
  and granularity checking (Section 3),
- :mod:`repro.core.transforms` — cycle splitting, logic privatization, and
  dependence rotation (Section 3.2),
- :mod:`repro.core.faultmap` — the 2n+4-bit fault-map register and the
  degraded configurations it encodes (Section 4),
- :mod:`repro.core.isolation` — scan-bit → component isolation (Section 3.1
  and the Section 6.1 experiment),
- :mod:`repro.core.rescue` — the component-level model of the full Rescue
  pipeline, produced by applying the paper's per-stage transformations to a
  baseline superscalar (Section 4).
"""

from repro.core.component import ComponentGraph, EdgeKind, LogicComponent
from repro.core.checker import (
    IciReport,
    check_granularity,
    ici_violations,
    super_components,
)
from repro.core.faultmap import DegradedConfig, FaultMapRegister
from repro.core.isolation import IsolationResult, IsolationTable
from repro.core.netcheck import NetIciReport, check_netlist_ici
from repro.core.rescue import (
    build_baseline_graph,
    build_rescue_graph,
    rescue_map_out_groups,
)
from repro.core.transforms import (
    TransformRecord,
    buffer,
    cycle_split,
    dependence_rotation,
    duplicate,
    privatize,
)

__all__ = [
    "ComponentGraph",
    "DegradedConfig",
    "EdgeKind",
    "FaultMapRegister",
    "IciReport",
    "IsolationResult",
    "IsolationTable",
    "LogicComponent",
    "NetIciReport",
    "check_netlist_ici",
    "TransformRecord",
    "buffer",
    "build_baseline_graph",
    "build_rescue_graph",
    "check_granularity",
    "cycle_split",
    "dependence_rotation",
    "duplicate",
    "ici_violations",
    "privatize",
    "rescue_map_out_groups",
    "super_components",
]
