"""Gate-level ICI verification — a lint for testable-by-construction RTL.

The component-graph checker (:mod:`repro.core.checker`) reasons about a
design's *intended* structure; this module verifies the property on the
actual gates: a netlist satisfies ICI at block granularity iff every
observation point (flop D input or primary output) has a combinational
fan-in cone whose labeled gates all belong to one map-out block.

When that holds, a failing scan bit implicates exactly its writer block —
the invariant the isolation table relies on.  Violations are reported
per observation point with the offending blocks and example gates, which
is what a designer needs to decide between cycle splitting, privatization,
or rotation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.netlist.netlist import Netlist


def _default_block(component: str) -> str:
    return component.split("/", 1)[0] if component else ""


@dataclass
class ConeViolation:
    """One observation point whose cone spans several blocks."""

    observer: str  # flop name or "po[i]"
    observer_block: str
    blocks: Tuple[str, ...]
    example_gates: Tuple[int, ...]

    @property
    def vid(self) -> str:
        """Stable violation id: a hash of (observer, cone blocks).

        Independent of gate numbering and violation ordering, so reruns
        of the checker — and the repair subsystem's plans — refer to the
        same violation by the same id.
        """
        text = f"{self.observer}|{self.observer_block}|" + ",".join(
            sorted(self.blocks)
        )
        return "ici-" + hashlib.sha1(text.encode()).hexdigest()[:10]

    def describe(self) -> str:
        return (
            f"{self.observer} (block {self.observer_block or '?'}) reads "
            f"in-cycle from blocks {', '.join(self.blocks)}; e.g. gates "
            f"{list(self.example_gates)}"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "id": self.vid,
            "observer": self.observer,
            "observer_block": self.observer_block,
            "blocks": list(self.blocks),
            "example_gates": list(self.example_gates),
        }

    @classmethod
    def from_json(cls, d: Mapping[str, Any]) -> "ConeViolation":
        return cls(
            observer=d["observer"],
            observer_block=d["observer_block"],
            blocks=tuple(d["blocks"]),
            example_gates=tuple(d["example_gates"]),
        )


@dataclass
class NetIciReport:
    """Result of gate-level ICI verification."""

    satisfied: bool
    violations: List[ConeViolation] = field(default_factory=list)
    checked_observers: int = 0
    cone_blocks: Dict[str, Set[str]] = field(default_factory=dict)

    def describe(self) -> str:
        if self.satisfied:
            return (
                f"gate-level ICI holds: {self.checked_observers} "
                "observation points, each fed by a single block"
            )
        lines = [
            f"gate-level ICI violated at {len(self.violations)} of "
            f"{self.checked_observers} observation points:"
        ]
        for v in self.violations[:8]:
            lines.append("  " + v.describe())
        if len(self.violations) > 8:
            lines.append(f"  ... and {len(self.violations) - 8} more")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable report (the format ``repro repair`` consumes).

        ``cone_blocks`` is omitted — it scales with the flop count and is
        derivable by rerunning the checker; the violation list with
        stable ids is the contract.
        """
        return {
            "satisfied": self.satisfied,
            "checked_observers": self.checked_observers,
            "violations": [v.to_json() for v in self.violations],
        }

    @classmethod
    def from_json(cls, d: Mapping[str, Any]) -> "NetIciReport":
        return cls(
            satisfied=bool(d["satisfied"]),
            violations=[
                ConeViolation.from_json(v) for v in d["violations"]
            ],
            checked_observers=int(d["checked_observers"]),
        )


def check_netlist_ici(
    netlist: Netlist,
    block_of: Optional[Callable[[str], str]] = None,
    exempt_blocks: Sequence[str] = (),
) -> NetIciReport:
    """Verify the gate-level ICI property of a netlist.

    Args:
        netlist: the design (validated; labels on gates/flops).
        block_of: component-label → block mapping (default: outermost
            ``/`` segment, matching :class:`IsolationTable`).
        exempt_blocks: blocks allowed to feed anyone (e.g. ``chipkill`` —
            a fault there scraps the core regardless, so cross-block
            cones ending in chipkill logic do not break isolation of the
            *disableable* blocks; pass what your fault-map treats as
            non-isolatable).

    Returns:
        A :class:`NetIciReport`; ``violations`` lists every observation
        point whose cone mixes two or more non-exempt blocks (or a
        non-exempt block different from its own).
    """
    netlist.validate()
    resolve = block_of or _default_block
    exempt = set(exempt_blocks)

    # One topological sweep computes, per net, the set of non-exempt
    # blocks whose gates feed it combinationally.
    blocks_of_net: Dict[int, frozenset] = {}
    empty: frozenset = frozenset()
    for net in netlist.source_nets():
        blocks_of_net[net] = empty
    for gid in netlist.topo_gate_order():
        g = netlist.gates[gid]
        acc: Set[str] = set()
        for src in g.inputs:
            acc |= blocks_of_net.get(src, empty)
        b = resolve(g.component)
        if b and b not in exempt:
            acc.add(b)
        blocks_of_net[g.output] = frozenset(acc)

    # Map each block to one example gate for the report.
    example_gate: Dict[Tuple[int, str], int] = {}
    for gid in netlist.topo_gate_order():
        g = netlist.gates[gid]
        b = resolve(g.component)
        if b:
            example_gate.setdefault((0, b), g.gid)

    report = NetIciReport(satisfied=True)
    observers: List[Tuple[str, str, int]] = [
        (f.name, resolve(f.component), f.d_net) for f in netlist.flops
    ]
    observers += [
        (f"po[{i}]", "", net)
        for i, net in enumerate(netlist.primary_outputs)
    ]
    for name, own_block, net in observers:
        cone = blocks_of_net.get(net, empty)
        report.checked_observers += 1
        report.cone_blocks[name] = set(cone)
        offending = {b for b in cone if b != own_block}
        if own_block in exempt:
            offending = set()
        if offending:
            report.satisfied = False
            report.violations.append(
                ConeViolation(
                    observer=name,
                    observer_block=own_block,
                    blocks=tuple(sorted(cone)),
                    example_gates=tuple(
                        example_gate.get((0, b), -1)
                        for b in sorted(offending)
                    )[:4],
                )
            )
    return report
