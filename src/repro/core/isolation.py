"""Scan-bit → ICI-component fault isolation (Sections 3.1 and 6.1).

Under ICI, the only diagnosis machinery needed is a design-time table
mapping each scan-chain bit position to the component that writes it.  A
failing bit then identifies the faulty component by a single lookup —
*which* bit failed is the whole signal, with no back-tracing through logic.

:class:`IsolationTable` implements that lookup; it also resolves component
labels to map-out blocks (the granularity the fault-map register disables)
via a caller-supplied mapping, since several fine-grained components share
one map-out block (e.g. a queue half plus its selection logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.scan.chain import ScanChain


@dataclass
class IsolationResult:
    """Outcome of isolating one failing response."""

    components: Set[str]
    blocks: Set[str]
    failing_bits: List[int]
    failing_pos: List[int] = field(default_factory=list)

    @property
    def isolated(self) -> bool:
        """True when the failure pins to exactly one map-out block."""
        return len(self.blocks) == 1

    @property
    def block(self) -> str:
        """The single implicated map-out block (raises when ambiguous)."""
        if not self.isolated:
            raise ValueError(
                f"failure spans {len(self.blocks)} blocks: "
                f"{sorted(self.blocks)}"
            )
        return next(iter(self.blocks))


class IsolationTable:
    """The design-time bit→component / component→block lookup tables."""

    def __init__(
        self,
        chain: ScanChain,
        block_of_component: Optional[Callable[[str], str]] = None,
        po_components: Optional[Sequence[str]] = None,
    ) -> None:
        """Build the tables.

        Args:
            chain: the scan chain whose flops carry component labels.
            block_of_component: maps a fine component label to its map-out
                block; defaults to the label's first ``/`` segment (the
                outermost :meth:`NetBuilder.component` context).
            po_components: component owning each primary output, in PO
                order, for failures observed at pins rather than scan bits.
        """
        self.chain = chain
        self._block_of = block_of_component or _outermost_label
        self.bit_component: List[str] = chain.component_table()
        self.po_components: List[str] = list(po_components or [])

    def component_at_bit(self, bit: int) -> str:
        """Fine-grained component label at a scan-bit position."""
        return self.bit_component[bit]

    def block_at_bit(self, bit: int) -> str:
        """Map-out block at a scan-bit position."""
        return self._block_of(self.bit_component[bit])

    def isolate(
        self,
        failing_bits: Sequence[int],
        failing_pos: Sequence[int] = (),
    ) -> IsolationResult:
        """Attribute a failing response to components and map-out blocks.

        Args:
            failing_bits: scan-bit positions whose captured value
                mismatched the gold response (any vector).
            failing_pos: failing primary-output indices, when POs are
                labeled.

        Returns:
            An :class:`IsolationResult`; ``isolated`` is True when every
            failing observation points at the same map-out block — the
            paper's condition for safely disabling only that block.
        """
        components: Set[str] = {
            self.bit_component[b] for b in failing_bits
        }
        for p in failing_pos:
            if p < len(self.po_components):
                components.add(self.po_components[p])
        blocks = {self._block_of(c) for c in components if c}
        return IsolationResult(
            components=components,
            blocks=blocks,
            failing_bits=list(failing_bits),
            failing_pos=list(failing_pos),
        )

    def blocks(self) -> Set[str]:
        """All map-out blocks reachable from the chain."""
        return {
            self._block_of(c) for c in self.bit_component if c
        }


def _outermost_label(component: str) -> str:
    return component.split("/", 1)[0] if component else ""
