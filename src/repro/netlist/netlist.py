"""The :class:`Netlist` container.

A netlist is a set of nets (integer ids), combinational gates, flip-flops,
primary inputs, and primary outputs.  Flop Q nets act as additional sources
("pseudo-primary inputs" in scan-test terms) and flop D nets as additional
observation points ("pseudo-primary outputs"), which is exactly the
full-scan combinational test model the paper assumes (Section 2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.netlist.gates import Flop, Gate, GateType


class NetlistError(Exception):
    """Raised for structural problems: undriven nets, cycles, double drive."""


class Netlist:
    """A mutable gate-level netlist with levelization and cone queries."""

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self.n_nets = 0
        self.net_names: Dict[int, str] = {}
        self.gates: List[Gate] = []
        self.flops: List[Flop] = []
        self.primary_inputs: List[int] = []
        self.primary_outputs: List[int] = []
        # Caches invalidated on mutation.
        self._topo: Optional[List[int]] = None
        self._driver: Optional[Dict[int, int]] = None
        self._fanout: Optional[Dict[int, List[Tuple[int, int]]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_net(self, name: str = "") -> int:
        """Allocate a fresh net id, optionally with a debug name."""
        nid = self.n_nets
        self.n_nets += 1
        if name:
            self.net_names[nid] = name
        self._invalidate()
        return nid

    def new_nets(self, count: int, prefix: str = "") -> List[int]:
        """Allocate ``count`` nets; named ``prefix[i]`` when a prefix is given."""
        return [
            self.new_net(f"{prefix}[{i}]" if prefix else "") for i in range(count)
        ]

    def add_input(self, name: str = "") -> int:
        """Create a primary input net."""
        nid = self.new_net(name)
        self.primary_inputs.append(nid)
        return nid

    def mark_output(self, net: int) -> None:
        """Mark an existing net as a primary output."""
        self._check_net(net)
        self.primary_outputs.append(net)

    def add_gate(
        self,
        gtype: GateType,
        inputs: Sequence[int],
        output: Optional[int] = None,
        component: str = "",
    ) -> int:
        """Add a gate; returns its output net (allocated when not given)."""
        for net in inputs:
            self._check_net(net)
        if output is None:
            output = self.new_net()
        else:
            self._check_net(output)
        gate = Gate(
            gid=len(self.gates),
            gtype=gtype,
            inputs=tuple(inputs),
            output=output,
            component=component,
        )
        self.gates.append(gate)
        self._invalidate()
        return output

    def add_flop(
        self, d_net: int, name: str = "", component: str = ""
    ) -> Flop:
        """Add a D flip-flop capturing ``d_net``; returns the flop (Q is new)."""
        self._check_net(d_net)
        q_net = self.new_net(f"{name}.q" if name else "")
        flop = Flop(
            fid=len(self.flops),
            d_net=d_net,
            q_net=q_net,
            name=name or f"ff{len(self.flops)}",
            component=component,
        )
        self.flops.append(flop)
        self._invalidate()
        return flop

    # ------------------------------------------------------------------
    # Surgical edits (the repair subsystem's patch primitives)
    # ------------------------------------------------------------------
    def rewire_gate(self, gid: int, inputs: Sequence[int]) -> None:
        """Re-point gate ``gid``'s input pins; type and output stay."""
        g = self.gates[gid]
        for net in inputs:
            self._check_net(net)
        self.gates[gid] = Gate(
            gid=g.gid,
            gtype=g.gtype,
            inputs=tuple(inputs),
            output=g.output,
            component=g.component,
        )
        self._invalidate()

    def set_flop_d(self, fid: int, d_net: int) -> None:
        """Re-point flop ``fid``'s D input to ``d_net``."""
        self._check_net(d_net)
        self.flops[fid].d_net = d_net
        self._invalidate()

    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Independent copy; edits to either netlist leave the other alone.

        Gates are immutable and shared; flops (mutable) are duplicated.
        """
        out = Netlist(name or self.name)
        out.n_nets = self.n_nets
        out.net_names = dict(self.net_names)
        out.gates = list(self.gates)
        out.flops = [
            Flop(
                fid=f.fid,
                d_net=f.d_net,
                q_net=f.q_net,
                name=f.name,
                component=f.component,
                scan=f.scan,
                scan_index=f.scan_index,
            )
            for f in self.flops
        ]
        out.primary_inputs = list(self.primary_inputs)
        out.primary_outputs = list(self.primary_outputs)
        return out

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def driver_of(self, net: int) -> Optional[int]:
        """Gate id driving ``net``; None for PIs, flop Qs, and floating nets."""
        if self._driver is None:
            self._driver = {g.output: g.gid for g in self.gates}
        return self._driver.get(net)

    def fanout_of(self, net: int) -> List[Tuple[int, int]]:
        """List of (gate id, pin index) pairs reading ``net``."""
        if self._fanout is None:
            fan: Dict[int, List[Tuple[int, int]]] = {}
            for g in self.gates:
                for pin, src in enumerate(g.inputs):
                    fan.setdefault(src, []).append((g.gid, pin))
            self._fanout = fan
        return self._fanout.get(net, [])

    def source_nets(self) -> List[int]:
        """All combinational sources: primary inputs plus flop Q nets."""
        return list(self.primary_inputs) + [f.q_net for f in self.flops]

    def observe_nets(self) -> List[int]:
        """All observation points: primary outputs plus flop D nets."""
        return list(self.primary_outputs) + [f.d_net for f in self.flops]

    def topo_gate_order(self) -> List[int]:
        """Gate ids in topological (source-to-sink) order.

        Raises :class:`NetlistError` if the combinational logic contains a
        cycle — combinational cycles break both simulation and the
        single-cycle scan-test model.
        """
        if self._topo is not None:
            return self._topo
        seen_net: Set[int] = set(self.source_nets())
        fan_by_net: Dict[int, List[int]] = {}
        for g in self.gates:
            for src in set(g.inputs):
                fan_by_net.setdefault(src, []).append(g.gid)
        order: List[int] = []
        queued: Set[int] = set()
        frontier = [
            g.gid
            for g in self.gates
            if all(i in seen_net for i in g.inputs)
        ]
        queued.update(frontier)
        while frontier:
            gid = frontier.pop()
            order.append(gid)
            out = self.gates[gid].output
            if out in seen_net:
                continue
            seen_net.add(out)
            for reader in fan_by_net.get(out, []):
                if reader in queued:
                    continue
                g = self.gates[reader]
                if all(i in seen_net for i in g.inputs):
                    queued.add(reader)
                    frontier.append(reader)
        # Gates never scheduled either read floating nets or sit on a cycle.
        if len(order) != len(self.gates):
            unscheduled = [g.gid for g in self.gates if g.gid not in queued]
            raise NetlistError(
                f"{self.name}: {len(self.gates) - len(order)} gates not "
                f"levelizable (cycle or floating input); first few: "
                f"{unscheduled[:5]}"
            )
        self._topo = order
        return order

    def validate(self) -> None:
        """Check double-driven nets and levelizability; raise on failure."""
        drivers: Dict[int, int] = {}
        for g in self.gates:
            if g.output in drivers:
                raise NetlistError(
                    f"net {g.output} driven by gates {drivers[g.output]} "
                    f"and {g.gid}"
                )
            drivers[g.output] = g.gid
        for net in self.primary_inputs:
            if net in drivers:
                raise NetlistError(f"primary input net {net} is also driven")
        for f in self.flops:
            if f.q_net in drivers:
                raise NetlistError(f"flop {f.name} Q net {f.q_net} is driven")
        self.topo_gate_order()

    # ------------------------------------------------------------------
    # Cone queries (used by fault simulation and ICI checking)
    # ------------------------------------------------------------------
    def fanout_cone_gates(self, net: int) -> List[int]:
        """Gate ids in the transitive combinational fanout of ``net``,
        returned in topological order."""
        affected_nets: Set[int] = {net}
        cone: Set[int] = set()
        for gid in self.topo_gate_order():
            g = self.gates[gid]
            if any(i in affected_nets for i in g.inputs):
                cone.add(gid)
                affected_nets.add(g.output)
        order = [gid for gid in self.topo_gate_order() if gid in cone]
        return order

    def fanin_cone_sources(self, net: int) -> Set[int]:
        """Source nets (PIs and flop Qs) feeding ``net`` combinationally."""
        sources = set(self.source_nets())
        result: Set[int] = set()
        stack = [net]
        seen: Set[int] = set()
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            if cur in sources:
                result.add(cur)
                continue
            gid = self.driver_of(cur)
            if gid is not None:
                stack.extend(self.gates[gid].inputs)
        return result

    def observers_of_cone(self, net: int) -> Tuple[List[int], List[int]]:
        """(flop fids, PO nets) reachable from ``net`` combinationally."""
        affected: Set[int] = {net}
        for gid in self.fanout_cone_gates(net):
            affected.add(self.gates[gid].output)
        flops = [f.fid for f in self.flops if f.d_net in affected]
        pos = [p for p in self.primary_outputs if p in affected]
        return flops, pos

    # ------------------------------------------------------------------
    def prune_unobservable(self) -> int:
        """Remove gates that reach no primary output or flop D input.

        Synthesis tools sweep such dead logic away; doing the same here
        keeps fault universes (and untestable-fault counts) realistic.
        Returns the number of gates removed.  Gate ids are renumbered.
        """
        observed: Set[int] = set(self.observe_nets())
        keep_net: Set[int] = set(observed)
        # Walk backwards from observation points through drivers.
        stack = list(observed)
        driver = {g.output: g for g in self.gates}
        while stack:
            net = stack.pop()
            gate = driver.get(net)
            if gate is None:
                continue
            for src in gate.inputs:
                if src not in keep_net:
                    keep_net.add(src)
                    stack.append(src)
        kept = [g for g in self.gates if g.output in keep_net]
        removed = len(self.gates) - len(kept)
        if removed:
            self.gates = [
                Gate(
                    gid=i,
                    gtype=g.gtype,
                    inputs=g.inputs,
                    output=g.output,
                    component=g.component,
                )
                for i, g in enumerate(kept)
            ]
            self._invalidate()
        return removed

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Size summary used by the Table 3 reproduction."""
        return {
            "nets": self.n_nets,
            "gates": len(self.gates),
            "flops": len(self.flops),
            "primary_inputs": len(self.primary_inputs),
            "primary_outputs": len(self.primary_outputs),
        }

    def components(self) -> Set[str]:
        """All distinct ICI component labels on gates and flops."""
        labels = {g.component for g in self.gates if g.component}
        labels |= {f.component for f in self.flops if f.component}
        return labels

    # ------------------------------------------------------------------
    def _check_net(self, net: int) -> None:
        if not (0 <= net < self.n_nets):
            raise NetlistError(f"unknown net id {net}")

    def _invalidate(self) -> None:
        self._topo = None
        self._driver = None
        self._fanout = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats()
        return (
            f"<Netlist {self.name}: {s['gates']} gates, {s['flops']} flops, "
            f"{s['nets']} nets>"
        )
