"""Netlist simulation: scalar two-valued and numpy parallel-pattern.

Both simulators evaluate the *combinational test model* of a full-scan
design: sources are primary inputs plus flop Q nets (state scanned in),
sinks are primary outputs plus flop D nets (state scanned out).  That is the
single-cycle scan test of the paper's Section 2: scan-in, one capture cycle,
scan-out.

The :class:`PackedSimulator` evaluates many patterns at once along a numpy
axis — the Python-level analogue of classic parallel-pattern fault
simulation — and supports *cone-restricted* faulty re-simulation so that
grading thousands of faults (the paper's 6000-fault experiment) stays fast.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.faults import StuckAt
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist


def _eval_gate_scalar(gtype: GateType, ins: Sequence[int]) -> int:
    if gtype is GateType.AND:
        return int(all(ins))
    if gtype is GateType.OR:
        return int(any(ins))
    if gtype is GateType.NAND:
        return int(not all(ins))
    if gtype is GateType.NOR:
        return int(not any(ins))
    if gtype is GateType.XOR:
        v = 0
        for x in ins:
            v ^= x
        return v
    if gtype is GateType.XNOR:
        v = 1
        for x in ins:
            v ^= x
        return v
    if gtype is GateType.NOT:
        return 1 - ins[0]
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.MUX2:
        return ins[1] if ins[2] else ins[0]
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    raise ValueError(f"unknown gate type {gtype}")


def _eval_gate_packed(gtype: GateType, ins: List[np.ndarray]) -> np.ndarray:
    if gtype is GateType.AND:
        v = ins[0]
        for x in ins[1:]:
            v = v & x
        return v
    if gtype is GateType.OR:
        v = ins[0]
        for x in ins[1:]:
            v = v | x
        return v
    if gtype is GateType.NAND:
        v = ins[0]
        for x in ins[1:]:
            v = v & x
        return ~v
    if gtype is GateType.NOR:
        v = ins[0]
        for x in ins[1:]:
            v = v | x
        return ~v
    if gtype is GateType.XOR:
        v = ins[0]
        for x in ins[1:]:
            v = v ^ x
        return v
    if gtype is GateType.XNOR:
        v = ins[0]
        for x in ins[1:]:
            v = v ^ x
        return ~v
    if gtype is GateType.NOT:
        return ~ins[0]
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.MUX2:
        return np.where(ins[2], ins[1], ins[0])
    raise ValueError(f"unknown gate type {gtype}")


class Simulator:
    """Scalar (one pattern at a time) two-valued simulator."""

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        self._order = netlist.topo_gate_order()

    def evaluate(
        self,
        pi_values: Dict[int, int],
        state: Optional[Dict[int, int]] = None,
        fault: Optional[StuckAt] = None,
    ) -> Tuple[Dict[int, int], Dict[int, int], Dict[int, int]]:
        """Evaluate one capture cycle.

        Args:
            pi_values: value per primary-input net id (missing PIs default 0).
            state: value per flop fid (missing flops default 0).
            fault: optional stuck-at override.

        Returns:
            (net value map, PO value map, next-state map by flop fid).
        """
        nl = self.netlist
        state = state or {}
        vals: Dict[int, int] = {}
        stem = fault if fault is not None and fault.is_stem else None

        def store(net: int, value: int) -> None:
            if stem is not None and net == stem.net:
                value = stem.value
            vals[net] = value

        for net in nl.primary_inputs:
            store(net, int(pi_values.get(net, 0)))
        for f in nl.flops:
            store(f.q_net, int(state.get(f.fid, 0)))
        for gid in self._order:
            g = nl.gates[gid]
            ins = [vals[i] for i in g.inputs]
            if (
                fault is not None
                and fault.gate == gid
                and fault.pin is not None
            ):
                ins[fault.pin] = fault.value
            store(g.output, _eval_gate_scalar(g.gtype, ins))
        po = {net: vals[net] for net in nl.primary_outputs}
        next_state: Dict[int, int] = {}
        for f in nl.flops:
            v = vals[f.d_net]
            if fault is not None and fault.flop == f.fid:
                v = fault.value
            next_state[f.fid] = v
        return vals, po, next_state

    def run_cycles(
        self,
        pi_sequence: Sequence[Dict[int, int]],
        state: Optional[Dict[int, int]] = None,
        fault: Optional[StuckAt] = None,
    ) -> Tuple[List[Dict[int, int]], Dict[int, int]]:
        """Run several functional clock cycles; returns (PO per cycle, state)."""
        state = dict(state or {})
        outputs: List[Dict[int, int]] = []
        for pi_values in pi_sequence:
            _, po, state = self.evaluate(pi_values, state, fault)
            outputs.append(po)
        return outputs, state


class PackedSimulator:
    """Parallel-pattern simulator: one numpy bool axis across patterns."""

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        self._order = netlist.topo_gate_order()
        # Map source nets to their column in the packed input matrix.
        self.source_nets = netlist.source_nets()
        self.source_col = {net: i for i, net in enumerate(self.source_nets)}
        self._cone_cache: Dict[int, List[int]] = {}
        self._d_lookup: Optional[Dict[int, List[int]]] = None
        self._po_index: Optional[Dict[int, int]] = None

    @property
    def n_sources(self) -> int:
        """Number of pattern columns (primary inputs + flop state bits)."""
        return len(self.source_nets)

    @property
    def d_lookup(self) -> Dict[int, List[int]]:
        """Net -> flop fids capturing it, built once per simulator.

        Fault grading compares every changed cone net against the
        observation points; building this map per fault would cost
        O(faults x flops), so it is memoized here.
        """
        if self._d_lookup is None:
            lut: Dict[int, List[int]] = {}
            for f in self.netlist.flops:
                lut.setdefault(f.d_net, []).append(f.fid)
            self._d_lookup = lut
        return self._d_lookup

    @property
    def po_index(self) -> Dict[int, int]:
        """Net -> primary-output column, built once per simulator."""
        if self._po_index is None:
            self._po_index = {
                net: i
                for i, net in enumerate(self.netlist.primary_outputs)
            }
        return self._po_index

    def good_values(self, patterns: np.ndarray) -> Dict[int, np.ndarray]:
        """Evaluate all nets for a (P, n_sources) bool pattern matrix."""
        if patterns.ndim != 2 or patterns.shape[1] != self.n_sources:
            raise ValueError(
                f"patterns must be (P, {self.n_sources}), got {patterns.shape}"
            )
        nl = self.netlist
        vals: Dict[int, np.ndarray] = {}
        for net, col in self.source_col.items():
            vals[net] = patterns[:, col]
        npat = patterns.shape[0]
        for gid in self._order:
            g = nl.gates[gid]
            if g.gtype is GateType.CONST0:
                vals[g.output] = np.zeros(npat, dtype=bool)
                continue
            if g.gtype is GateType.CONST1:
                vals[g.output] = np.ones(npat, dtype=bool)
                continue
            ins = [vals[i] for i in g.inputs]
            vals[g.output] = _eval_gate_packed(g.gtype, ins)
        return vals

    def _cone(self, net: int) -> List[int]:
        cone = self._cone_cache.get(net)
        if cone is None:
            cone = self.netlist.fanout_cone_gates(net)
            self._cone_cache[net] = cone
        return cone

    def faulty_values(
        self,
        good: Dict[int, np.ndarray],
        fault: StuckAt,
    ) -> Dict[int, np.ndarray]:
        """Re-evaluate only the fault's fanout cone under ``fault``.

        Returns a sparse map net→faulty values for nets whose value may
        differ from ``good``; nets absent from the map equal the good value.
        """
        nl = self.netlist
        npat = next(iter(good.values())).shape[0] if good else 0
        delta: Dict[int, np.ndarray] = {}
        const = (
            np.ones(npat, dtype=bool)
            if fault.value
            else np.zeros(npat, dtype=bool)
        )
        if fault.is_stem:
            delta[fault.net] = const
            cone = self._cone(fault.net)
        elif fault.flop is not None:
            # Flop D-pin fault affects only the capture, not the logic.
            return {}
        else:
            cone = self._cone(fault.net)

        def val(net: int) -> np.ndarray:
            return delta.get(net, good[net])

        for gid in cone:
            g = nl.gates[gid]
            if g.gtype in (GateType.CONST0, GateType.CONST1):
                continue
            ins = [val(i) for i in g.inputs]
            if fault.gate == gid and fault.pin is not None:
                ins = list(ins)
                ins[fault.pin] = const
            delta[g.output] = _eval_gate_packed(g.gtype, ins)
        if fault.gate is not None:
            # Branch fault: the faulted gate may not be in cone of fault.net
            # restricted to stem (it is, since cone starts at fault.net and
            # the gate reads it); nothing extra needed.
            pass
        return delta

    def capture(
        self,
        values: Dict[int, np.ndarray],
        fault: Optional[StuckAt] = None,
        delta: Optional[Dict[int, np.ndarray]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Extract (PO matrix, captured-state matrix) from net values.

        ``delta`` overlays faulty-cone values on top of ``values``.
        """
        delta = delta or {}

        def val(net: int) -> np.ndarray:
            return delta.get(net, values[net])

        nl = self.netlist
        npat = next(iter(values.values())).shape[0] if values else 0
        po = (
            np.stack([val(net) for net in nl.primary_outputs], axis=1)
            if nl.primary_outputs
            else np.zeros((npat, 0), dtype=bool)
        )
        if nl.flops:
            cols = []
            for f in nl.flops:
                v = val(f.d_net)
                if fault is not None and fault.flop == f.fid:
                    v = (
                        np.ones_like(v)
                        if fault.value
                        else np.zeros_like(v)
                    )
                cols.append(v)
            state = np.stack(cols, axis=1)
        else:
            state = np.zeros((npat, 0), dtype=bool)
        return po, state
