"""Gate-level area accounting (the paper's Section 5 methodology).

The paper compiled its Verilog model against the CMU standard-cell library
to get a pre-layout area breakdown, then (a) counted scan-cell area as
chipkill (25% of the queues, 12% of the other stages) and (b) charged the
extra shift stages to the frontend/backends.  This module reproduces that
accounting for our gate-level models: per-gate relative cell areas, a
scan-flop overhead, and per-block / scan-vs-logic breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.scan.insertion import SCAN_CELL_AREA_OVERHEAD

#: Relative cell areas (NAND2-equivalents), standard-cell-library-like.
GATE_AREA: Mapping[GateType, float] = {
    GateType.NOT: 0.67,
    GateType.BUF: 0.67,
    GateType.AND: 1.33,
    GateType.OR: 1.33,
    GateType.NAND: 1.0,
    GateType.NOR: 1.0,
    GateType.XOR: 2.33,
    GateType.XNOR: 2.33,
    GateType.MUX2: 2.33,
    GateType.CONST0: 0.0,
    GateType.CONST1: 0.0,
}

#: A plain D flip-flop in NAND2-equivalents.
FLOP_AREA = 6.0

#: Multi-input gates beyond 2 inputs cost one extra unit per extra input.
_EXTRA_INPUT_AREA = 0.67


def gate_area(gtype: GateType, n_inputs: int) -> float:
    """Area of one gate instance in NAND2-equivalents."""
    base = GATE_AREA[gtype]
    extra = max(0, n_inputs - 2) * _EXTRA_INPUT_AREA
    if gtype in (GateType.NOT, GateType.BUF, GateType.MUX2,
                 GateType.CONST0, GateType.CONST1):
        extra = 0.0
    return base + extra


@dataclass
class AreaBreakdown:
    """Per-block area split into logic and scan-cell contributions."""

    logic: Dict[str, float]
    flops: Dict[str, float]
    scan_overhead: Dict[str, float]

    @property
    def total(self) -> float:
        """Whole-design area in NAND2-equivalents."""
        return (
            sum(self.logic.values())
            + sum(self.flops.values())
            + sum(self.scan_overhead.values())
        )

    def block_total(self, block: str) -> float:
        """One block's total area (logic + flops + scan overhead)."""
        return (
            self.logic.get(block, 0.0)
            + self.flops.get(block, 0.0)
            + self.scan_overhead.get(block, 0.0)
        )

    def scan_fraction(self, block: str) -> float:
        """Scan-cell share of a block (the paper's 25%/12% figures count
        the whole scan flop plus its mux as scan area)."""
        total = self.block_total(block)
        if not total:
            return 0.0
        scan_area = self.flops.get(block, 0.0) + self.scan_overhead.get(
            block, 0.0
        )
        return scan_area / total

    def blocks(self):
        """All block names present in the breakdown."""
        names = set(self.logic) | set(self.flops) | set(self.scan_overhead)
        return sorted(names)


def area_breakdown(netlist: Netlist) -> AreaBreakdown:
    """Compute the per-block area breakdown of a netlist.

    Blocks are the outermost component labels (the map-out granularity);
    unlabeled logic lands in ``""``.
    """
    logic: Dict[str, float] = {}
    flops: Dict[str, float] = {}
    scan_overhead: Dict[str, float] = {}

    def block_of(component: str) -> str:
        return component.split("/", 1)[0] if component else ""

    for g in netlist.gates:
        b = block_of(g.component)
        logic[b] = logic.get(b, 0.0) + gate_area(g.gtype, len(g.inputs))
    for f in netlist.flops:
        b = block_of(f.component)
        flops[b] = flops.get(b, 0.0) + FLOP_AREA
        if f.scan:
            scan_overhead[b] = scan_overhead.get(b, 0.0) + FLOP_AREA * (
                SCAN_CELL_AREA_OVERHEAD - 1.0
            )
    return AreaBreakdown(logic=logic, flops=flops,
                         scan_overhead=scan_overhead)
