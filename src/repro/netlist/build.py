"""Word-level netlist construction helpers.

:class:`NetBuilder` wraps a :class:`~repro.netlist.netlist.Netlist` with
multi-bit ("word") operations — adders, muxes, comparators, encoders — so
the gate-level pipeline models in :mod:`repro.rtl` read like structural RTL.

Every gate and flop created inside a ``with builder.component("name")``
block is labeled with that ICI component name; the labels are what the
paper's fault-isolation procedure maps failing scan bits back to.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Sequence

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

Word = List[int]


class NetBuilder:
    """Structural-RTL-style builder over a netlist."""

    def __init__(self, netlist: Optional[Netlist] = None, name: str = "design"):
        self.nl = netlist if netlist is not None else Netlist(name)
        self._component_stack: List[str] = []

    # ------------------------------------------------------------------
    # Component labeling
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def component(self, name: str) -> Iterator[None]:
        """Label all gates/flops created in this block with ``name``.

        Nested blocks join labels with ``/`` so sub-structure is preserved
        while the outermost label remains the isolation granularity.
        """
        self._component_stack.append(name)
        try:
            yield
        finally:
            self._component_stack.pop()

    @property
    def current_component(self) -> str:
        return "/".join(self._component_stack)

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def gate(self, gtype: GateType, *inputs: int) -> int:
        """Add one gate in the current component; returns its output net."""
        return self.nl.add_gate(
            gtype, list(inputs), component=self.current_component
        )

    def input_word(self, width: int, name: str) -> Word:
        """Declare a multi-bit primary input (little-endian bit list)."""
        return [self.nl.add_input(f"{name}[{i}]") for i in range(width)]

    def output_word(self, word: Word) -> None:
        """Mark every bit of ``word`` as a primary output."""
        for net in word:
            self.nl.mark_output(net)

    def const(self, bit: int) -> int:
        """A constant-0 or constant-1 driver net."""
        return self.gate(GateType.CONST1 if bit else GateType.CONST0)

    def const_word(self, value: int, width: int) -> Word:
        """A constant word, least-significant bit first."""
        return [self.const((value >> i) & 1) for i in range(width)]

    def register(self, d_word: Word, name: str) -> Word:
        """Latch a word; returns the Q word (little-endian bit order)."""
        q: Word = []
        for i, d in enumerate(d_word):
            flop = self.nl.add_flop(
                d, name=f"{name}[{i}]", component=self.current_component
            )
            q.append(flop.q_net)
        return q

    def register_bit(self, d: int, name: str) -> int:
        """Latch one bit; returns the flop's Q net."""
        return self.nl.add_flop(
            d, name=name, component=self.current_component
        ).q_net

    # ------------------------------------------------------------------
    # Bitwise word ops
    # ------------------------------------------------------------------
    def not_w(self, a: Word) -> Word:
        """Bitwise NOT of a word."""
        return [self.gate(GateType.NOT, x) for x in a]

    def and_w(self, a: Word, b: Word) -> Word:
        """Bitwise AND of two equal-width words."""
        self._same_width(a, b)
        return [self.gate(GateType.AND, x, y) for x, y in zip(a, b)]

    def or_w(self, a: Word, b: Word) -> Word:
        """Bitwise OR of two equal-width words."""
        self._same_width(a, b)
        return [self.gate(GateType.OR, x, y) for x, y in zip(a, b)]

    def xor_w(self, a: Word, b: Word) -> Word:
        """Bitwise XOR of two equal-width words."""
        self._same_width(a, b)
        return [self.gate(GateType.XOR, x, y) for x, y in zip(a, b)]

    def mask_w(self, a: Word, enable: int) -> Word:
        """AND every bit of ``a`` with the ``enable`` bit (paper's map-out
        masking of inputs arriving from faulty blocks, Section 3.3)."""
        return [self.gate(GateType.AND, x, enable) for x in a]

    def mux_w(self, sel: int, when0: Word, when1: Word) -> Word:
        """Word-wide 2:1 mux: ``when1`` if ``sel`` else ``when0``."""
        self._same_width(when0, when1)
        return [
            self.gate(GateType.MUX2, a, b, sel) for a, b in zip(when0, when1)
        ]

    def mux_many(self, selects: Sequence[int], words: Sequence[Word]) -> Word:
        """One-hot mux: OR of (word AND select) terms."""
        if len(selects) != len(words) or not words:
            raise ValueError("mux_many needs one select per word")
        acc = self.mask_w(words[0], selects[0])
        for sel, word in zip(selects[1:], words[1:]):
            acc = self.or_w(acc, self.mask_w(word, sel))
        return acc

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def and_reduce(self, bits: Sequence[int]) -> int:
        """AND of all bits (1 for an empty list)."""
        if not bits:
            return self.const(1)
        if len(bits) == 1:
            return self.gate(GateType.BUF, bits[0])
        return self.gate(GateType.AND, *bits)

    def or_reduce(self, bits: Sequence[int]) -> int:
        """OR of all bits (0 for an empty list)."""
        if not bits:
            return self.const(0)
        if len(bits) == 1:
            return self.gate(GateType.BUF, bits[0])
        return self.gate(GateType.OR, *bits)

    def eq_w(self, a: Word, b: Word) -> int:
        """Single-bit equality comparator over two words."""
        self._same_width(a, b)
        return self.and_reduce(
            [self.gate(GateType.XNOR, x, y) for x, y in zip(a, b)]
        )

    def nonzero(self, a: Word) -> int:
        """1 when any bit of ``a`` is set."""
        return self.or_reduce(a)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def half_adder(self, a: int, b: int) -> tuple:
        """(sum, carry) of two bits."""
        return self.gate(GateType.XOR, a, b), self.gate(GateType.AND, a, b)

    def full_adder(self, a: int, b: int, cin: int) -> tuple:
        """(sum, carry) of two bits plus a carry-in."""
        s1, c1 = self.half_adder(a, b)
        s2, c2 = self.half_adder(s1, cin)
        return s2, self.gate(GateType.OR, c1, c2)

    def adder(self, a: Word, b: Word, cin: Optional[int] = None) -> Word:
        """Ripple-carry adder; result has the same width (carry dropped)."""
        self._same_width(a, b)
        carry = cin if cin is not None else self.const(0)
        out: Word = []
        for x, y in zip(a, b):
            s, carry = self.full_adder(x, y, carry)
            out.append(s)
        return out

    def increment(self, a: Word) -> Word:
        """a + 1, wrapping at the word width."""
        carry = self.const(1)
        out: Word = []
        for x in a:
            s, carry = self.half_adder(x, carry)
            out.append(s)
        return out

    def popcount(self, bits: Sequence[int], width: int) -> Word:
        """Sum of single bits as a ``width``-bit word (used by select logic)."""
        total = self.const_word(0, width)
        for b in bits:
            operand = [b] + [self.const(0) for _ in range(width - 1)]
            total = self.adder(total, operand)
        return total

    # ------------------------------------------------------------------
    # Encoders / selectors
    # ------------------------------------------------------------------
    def priority_select(
        self, requests: Sequence[int], count: int
    ) -> List[List[int]]:
        """Oldest-first selection of up to ``count`` requests.

        Returns ``count`` one-hot grant vectors (grant[k][i] is 1 when
        request i is the (k+1)-th granted).  This is the gate-level shape of
        the paper's selection trees, flattened for clarity.
        """
        grants: List[List[int]] = []
        # taken[i] = request i already granted by an earlier selector.
        taken = [self.const(0) for _ in requests]
        for _ in range(count):
            grant_k: List[int] = []
            free_so_far = self.const(1)
            for i, req in enumerate(requests):
                avail = self.gate(
                    GateType.AND, req, self.gate(GateType.NOT, taken[i])
                )
                g = self.gate(GateType.AND, avail, free_so_far)
                grant_k.append(g)
                free_so_far = self.gate(
                    GateType.AND, free_so_far, self.gate(GateType.NOT, g)
                )
            taken = [
                self.gate(GateType.OR, t, g) for t, g in zip(taken, grant_k)
            ]
            grants.append(grant_k)
        return grants

    def decoder(self, index: Word) -> List[int]:
        """Full decoder: 2^n one-hot bits from an n-bit index word."""
        n = len(index)
        inverted = self.not_w(index)
        outs: List[int] = []
        for value in range(1 << n):
            bits = [
                index[i] if (value >> i) & 1 else inverted[i]
                for i in range(n)
            ]
            outs.append(self.and_reduce(bits))
        return outs

    def select_word(self, index: Word, words: Sequence[Word]) -> Word:
        """Read port: pick ``words[index]`` via a decoder + one-hot mux."""
        onehot = self.decoder(index)
        if len(words) != len(onehot):
            raise ValueError(
                f"need {len(onehot)} words for a {len(index)}-bit index, "
                f"got {len(words)}"
            )
        return self.mux_many(onehot, list(words))

    def gt(self, a: Word, b: Word) -> int:
        """Unsigned a > b, MSB-first ripple comparator."""
        self._same_width(a, b)
        greater = self.const(0)
        equal = self.const(1)
        for x, y in zip(reversed(a), reversed(b)):
            this_gt = self.gate(
                GateType.AND, x, self.gate(GateType.NOT, y)
            )
            greater = self.gate(
                GateType.OR, greater, self.gate(GateType.AND, equal, this_gt)
            )
            equal = self.gate(GateType.AND, equal, self.gate(GateType.XNOR, x, y))
        return greater

    # ------------------------------------------------------------------
    # Sequential feedback
    # ------------------------------------------------------------------
    def state_word(self, width: int, name: str) -> tuple:
        """Allocate a register whose D will be driven later.

        Returns (q_word, d_placeholders); connect the placeholders with
        :meth:`drive_word` once the next-state logic exists.  Needed for
        feedback state (program counters, pointers, queue entries).
        """
        ds = [self.nl.new_net(f"{name}.d[{i}]") for i in range(width)]
        qs: Word = []
        for i, d in enumerate(ds):
            flop = self.nl.add_flop(
                d, name=f"{name}[{i}]", component=self.current_component
            )
            qs.append(flop.q_net)
        return qs, ds

    def drive_word(self, placeholders: Word, word: Word) -> None:
        """Drive previously allocated placeholder nets (via buffers)."""
        self._same_width(placeholders, word)
        for dst, src in zip(placeholders, word):
            self.nl.add_gate(
                GateType.BUF, [src], output=dst,
                component=self.current_component,
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _same_width(a: Word, b: Word) -> None:
        if len(a) != len(b):
            raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
