"""Stuck-at fault sites.

The paper's test model (Section 2) is the classic single stuck-at model:
a net permanently at 0 or 1.  We support the two standard site classes —
*stem* faults on a net and *branch* faults on a single gate (or flop) input
pin — which is what equivalence collapsing in :mod:`repro.atpg.collapse`
produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class StuckAt:
    """A single stuck-at fault.

    Attributes:
        net: the faulted net (stem fault) or the net feeding the faulted pin.
        value: 0 or 1 — the stuck value.
        gate: when set, the fault is on input pin ``pin`` of this gate only.
        flop: when set, the fault is on the D input pin of this flop only.
    """

    net: int
    value: int
    gate: Optional[int] = None
    pin: Optional[int] = None
    flop: Optional[int] = None

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"stuck value must be 0 or 1, got {self.value}")
        if self.gate is not None and self.pin is None:
            raise ValueError("gate pin fault needs a pin index")
        if self.gate is not None and self.flop is not None:
            raise ValueError("fault cannot sit on both a gate and a flop pin")

    @property
    def is_stem(self) -> bool:
        """True when the fault affects every reader of the net."""
        return self.gate is None and self.flop is None

    def describe(self) -> str:
        """Human-readable site string, e.g. ``net12/SA0`` or ``g3.pin1/SA1``."""
        if self.gate is not None:
            site = f"g{self.gate}.pin{self.pin}"
        elif self.flop is not None:
            site = f"ff{self.flop}.d"
        else:
            site = f"net{self.net}"
        return f"{site}/SA{self.value}"
