"""Gate and flip-flop primitives for the netlist substrate.

The gate library matches what a simple standard-cell mapping produces:
basic boolean gates, a 2:1 mux, and a D flip-flop.  Scan insertion
(:mod:`repro.scan`) replaces flops with their muxed-scan equivalent; at the
netlist level that is recorded as a flag on the :class:`Flop` rather than as
extra gates, with the area/cycle cost accounted for by the scan substrate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class GateType(enum.Enum):
    """Combinational gate kinds supported by the simulators and ATPG."""

    AND = "and"
    OR = "or"
    NOT = "not"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    BUF = "buf"
    # MUX2 inputs are ordered (d0, d1, select).
    MUX2 = "mux2"
    # Constant drivers take no inputs.
    CONST0 = "const0"
    CONST1 = "const1"


# Number of inputs each gate type accepts; None means "two or more".
_ARITY = {
    GateType.AND: None,
    GateType.OR: None,
    GateType.NAND: None,
    GateType.NOR: None,
    GateType.XOR: None,
    GateType.XNOR: None,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.MUX2: 3,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
}


def check_arity(gtype: GateType, n_inputs: int) -> bool:
    """Return True when ``n_inputs`` is legal for ``gtype``."""
    want = _ARITY[gtype]
    if want is None:
        return n_inputs >= 2
    return n_inputs == want


@dataclass(frozen=True)
class Gate:
    """A combinational gate.

    Attributes:
        gid: index of the gate within its netlist.
        gtype: the gate kind.
        inputs: driving net ids, in pin order.
        output: the driven net id.
        component: ICI component label (empty string when unlabeled).
    """

    gid: int
    gtype: GateType
    inputs: Tuple[int, ...]
    output: int
    component: str = ""

    def __post_init__(self) -> None:
        if not check_arity(self.gtype, len(self.inputs)):
            raise ValueError(
                f"gate {self.gid}: {self.gtype.value} cannot take "
                f"{len(self.inputs)} inputs"
            )


@dataclass
class Flop:
    """A D flip-flop (or its scan-equivalent once ``scan`` is set).

    The flop's Q output net is a state source for combinational evaluation;
    its D input net is a state sink captured on the clock edge.  ``component``
    carries the ICI label of the logic that *writes* this flop — the paper's
    isolation procedure maps a failing scan bit back through exactly this
    label (Section 6.1).
    """

    fid: int
    d_net: int
    q_net: int
    name: str = ""
    component: str = ""
    scan: bool = field(default=False)
    # Position within the scan chain, assigned by scan insertion; -1 when
    # the flop is not on a chain.
    scan_index: int = -1
