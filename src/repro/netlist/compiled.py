"""Compiled netlist and bit-packed (64 patterns/word) fault simulation.

:class:`CompiledNetlist` flattens a :class:`~repro.netlist.netlist.Netlist`
into numpy structure-of-arrays form: gates are grouped into topological
*levels* and, within each level, into buckets of identical (gate type,
fan-in) shape whose input/output net ids live in flat integer arrays.  A
whole bucket then evaluates as a handful of vectorized bitwise ops instead
of one Python dict round-trip per gate.

:class:`PackedWordSimulator` is the engine the ATPG/diagnosis stack runs
on: it holds every net's values for a pattern set in a single
``(n_nets, n_words)`` uint64 matrix with **64 bit-packed patterns per
machine word** — classic parallel-pattern single-fault propagation, the
technique production fault simulators use.  Faulty re-simulation is
restricted to the fault's fanout cone and works on arbitrary-precision
Python ints (one bitwise op covers *all* patterns), with fault-effect
death pruning: the cone walk stops as soon as no net still differs from
the good circuit.  Fault dropping happens one level up — a fault leaves
the active list at its first detection (see :mod:`repro.atpg.faultsim`
and the ATPG flow), so later patterns never pay for it again.

The legacy dict-of-bool-arrays :class:`~repro.netlist.simulate.PackedSimulator`
is kept as a reference/fallback; :func:`make_simulator` selects a backend
by name, and both engines expose the same ``good_values`` /
``faulty_values`` / ``capture`` / ``source_col`` surface so consumers are
backend-agnostic.  ``benchmarks/bench_faultsim.py`` measures both and
asserts they agree bit-for-bit.
"""

from __future__ import annotations

import heapq
import sys
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.netlist.faults import StuckAt
from repro.netlist.gates import Gate, GateType
from repro.netlist.netlist import Netlist
from repro.telemetry import TELEMETRY

WORD_BITS = 64

_LITTLE = sys.byteorder == "little"


# ----------------------------------------------------------------------
# Bit packing helpers (pattern axis -> uint64 words, LSB = pattern 0)
# ----------------------------------------------------------------------
def n_words_for(n_patterns: int) -> int:
    """Words needed to hold ``n_patterns`` bits (at least one)."""
    return max(1, (n_patterns + WORD_BITS - 1) // WORD_BITS)


def pack_patterns(patterns: np.ndarray) -> np.ndarray:
    """Pack a (P, n_cols) bool matrix to (n_cols, n_words) uint64.

    Bit ``p % 64`` of word ``p // 64`` holds pattern ``p``; padding bits
    beyond P are zero.
    """
    npat, n_cols = patterns.shape
    n_words = n_words_for(npat)
    padded = np.zeros((n_words * WORD_BITS, n_cols), dtype=bool)
    padded[:npat] = patterns
    u8 = np.packbits(padded, axis=0, bitorder="little")  # (n_words*8, n_cols)
    words = np.ascontiguousarray(u8.T).view(np.uint64)  # (n_cols, n_words)
    if not _LITTLE:  # pragma: no cover - big-endian hosts only
        words = words.byteswap()
    return words


def unpack_words(words: np.ndarray, n_patterns: int) -> np.ndarray:
    """Unpack (n_rows, n_words) uint64 back to a (P, n_rows) bool matrix."""
    w = words if _LITTLE else words.byteswap()  # pragma: no branch
    u8 = np.ascontiguousarray(w).view(np.uint8)
    bits = np.unpackbits(u8, axis=1, bitorder="little")
    return bits[:, :n_patterns].T.astype(bool)


def _words_to_int(row: np.ndarray) -> int:
    """One net's word row -> arbitrary-precision int (bit p = pattern p)."""
    if _LITTLE:
        return int.from_bytes(row.tobytes(), "little")
    return int.from_bytes(row[::-1].tobytes(), "big")  # pragma: no cover


def _int_to_bits(value: int, n_patterns: int, n_words: int) -> np.ndarray:
    """Arbitrary-precision int -> (P,) bool array (bit p = pattern p)."""
    buf = value.to_bytes(n_words * 8, "little")
    bits = np.unpackbits(np.frombuffer(buf, dtype=np.uint8),
                         bitorder="little")
    return bits[:n_patterns].astype(bool)


# ----------------------------------------------------------------------
# Structure-of-arrays netlist form
# ----------------------------------------------------------------------
class _Bucket:
    """All gates of one (level, type, fan-in) shape, as flat arrays."""

    __slots__ = ("gtype", "inputs", "outputs")

    def __init__(self, gtype: GateType, gates: List[Gate]) -> None:
        self.gtype = gtype
        arity = len(gates[0].inputs)
        self.inputs = np.array(
            [g.inputs for g in gates], dtype=np.int64
        ).reshape(len(gates), arity)
        self.outputs = np.array([g.output for g in gates], dtype=np.int64)


class CompiledNetlist:
    """A :class:`Netlist` flattened for whole-level vectorized evaluation.

    Attributes:
        levels: per topological level, the list of same-shape gate buckets.
        source_idx: source net ids (PIs then flop Qs) as an index array —
            row ``source_idx[c]`` of the value matrix is pattern column c.
        po_cols / d_fids: observation maps net -> PO indices / flop fids.
        obs_nets: every net that is a PO or a flop D input.

    Cone-walk / levelization hooks (the surface the compiled PODEM and
    the event-driven faulty re-simulation share):

    - ``readers[net]``: gate ids reading ``net`` (fanout adjacency),
    - ``topo_pos[gid]``: position of gate ``gid`` in topological order
      (the heap key that makes an event-driven walk single-pass),
    - ``gate_tuples[gid]``: flat ``(gtype, inputs, output)`` triples,
    - ``driver_gid[net]``: gate driving ``net`` (-1 for sources/floating),
    - ``level_of_net[net]``: topological level of ``net`` (0 = sources).
    """

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        self.n_nets = netlist.n_nets
        self.source_nets: List[int] = netlist.source_nets()
        self.source_col: Dict[int, int] = {
            net: i for i, net in enumerate(self.source_nets)
        }
        self.source_idx = np.array(self.source_nets, dtype=np.int64)
        self.po_nets = np.array(netlist.primary_outputs, dtype=np.int64)
        self.flop_d_nets = np.array(
            [f.d_net for f in netlist.flops], dtype=np.int64
        )
        self.po_cols: Dict[int, List[int]] = {}
        for i, net in enumerate(netlist.primary_outputs):
            self.po_cols.setdefault(net, []).append(i)
        self.d_fids: Dict[int, List[int]] = {}
        for f in netlist.flops:
            self.d_fids.setdefault(f.d_net, []).append(f.fid)
        self.obs_nets: Set[int] = set(self.po_cols) | set(self.d_fids)
        self.levels, self.level_of_net = self._levelize(netlist)
        # Flat per-gate views for the event-driven faulty re-simulation:
        # reader lists (net -> gate ids), topo position per gate, and
        # (type, inputs, output) tuples (cheaper than Gate attribute
        # access in the per-fault inner loop).
        self.readers: List[List[int]] = [[] for _ in range(self.n_nets)]
        for g in netlist.gates:
            for src in set(g.inputs):
                self.readers[src].append(g.gid)
        self.topo_pos: List[int] = [0] * len(netlist.gates)
        for i, gid in enumerate(netlist.topo_gate_order()):
            self.topo_pos[gid] = i
        self.gate_tuples: List[Tuple[GateType, Tuple[int, ...], int]] = [
            (g.gtype, g.inputs, g.output) for g in netlist.gates
        ]
        self.driver_gid: List[int] = [-1] * self.n_nets
        for g in netlist.gates:
            self.driver_gid[g.output] = g.gid

    @staticmethod
    def _levelize(
        netlist: Netlist,
    ) -> Tuple[List[List[_Bucket]], List[int]]:
        """Group gates into levels, then (type, arity) buckets per level.

        Returns ``(levels, level_of_net)``; the per-net level array is
        kept on the compiled netlist as a levelization hook.
        """
        level_of_net = [0] * netlist.n_nets
        by_shape: Dict[Tuple[int, GateType, int], List[Gate]] = {}
        max_level = 0
        for gid in netlist.topo_gate_order():
            g = netlist.gates[gid]
            lvl = 1 + max(
                (level_of_net[i] for i in g.inputs), default=-1
            )
            level_of_net[g.output] = lvl
            max_level = max(max_level, lvl)
            by_shape.setdefault((lvl, g.gtype, len(g.inputs)), []).append(g)
        levels: List[List[_Bucket]] = [[] for _ in range(max_level + 1)]
        for (lvl, gtype, _arity), gates in sorted(
            by_shape.items(), key=lambda kv: (kv[0][0], kv[0][1].value,
                                              kv[0][2])
        ):
            levels[lvl].append(_Bucket(gtype, gates))
        return levels, level_of_net



# ----------------------------------------------------------------------
# Gate evaluation: whole buckets on the uint64 matrix
# ----------------------------------------------------------------------
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _eval_bucket(bucket: _Bucket, matrix: np.ndarray) -> None:
    t = bucket.gtype
    if t is GateType.CONST0:
        matrix[bucket.outputs] = 0
        return
    if t is GateType.CONST1:
        matrix[bucket.outputs] = _ALL_ONES
        return
    idx = bucket.inputs
    v = matrix[idx[:, 0]]  # fancy indexing copies; safe to mutate
    if t is GateType.NOT:
        matrix[bucket.outputs] = ~v
        return
    if t is GateType.BUF:
        matrix[bucket.outputs] = v
        return
    if t is GateType.MUX2:
        sel = matrix[idx[:, 2]]
        matrix[bucket.outputs] = (v & ~sel) | (matrix[idx[:, 1]] & sel)
        return
    if t in (GateType.AND, GateType.NAND):
        for j in range(1, idx.shape[1]):
            v &= matrix[idx[:, j]]
    elif t in (GateType.OR, GateType.NOR):
        for j in range(1, idx.shape[1]):
            v |= matrix[idx[:, j]]
    else:  # XOR / XNOR
        for j in range(1, idx.shape[1]):
            v ^= matrix[idx[:, j]]
    if t in (GateType.NAND, GateType.NOR, GateType.XNOR):
        v = ~v
    matrix[bucket.outputs] = v


# ----------------------------------------------------------------------
# Gate evaluation: single gates on arbitrary-precision ints (cone resim)
# ----------------------------------------------------------------------
def _eval_gate_int(gtype: GateType, ins: List[int], mask: int) -> int:
    if gtype is GateType.AND or gtype is GateType.NAND:
        v = ins[0]
        for x in ins[1:]:
            v &= x
        return (mask ^ v) if gtype is GateType.NAND else v
    if gtype is GateType.OR or gtype is GateType.NOR:
        v = ins[0]
        for x in ins[1:]:
            v |= x
        return (mask ^ v) if gtype is GateType.NOR else v
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        v = ins[0]
        for x in ins[1:]:
            v ^= x
        return (mask ^ v) if gtype is GateType.XNOR else v
    if gtype is GateType.NOT:
        return mask ^ ins[0]
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.MUX2:
        return (ins[0] & (mask ^ ins[2])) | (ins[1] & ins[2])
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return mask
    raise ValueError(f"unknown gate type {gtype}")


class WordValues:
    """Net values of one pattern set, bit-packed 64 patterns per word.

    ``matrix[net, w]`` holds patterns ``64w .. 64w+63`` of ``net``; padding
    bits past ``npat`` are unspecified (masked out wherever observed).
    The per-net arbitrary-precision int view is materialized lazily and
    cached — cone re-simulations of different faults share it.
    """

    __slots__ = ("matrix", "npat", "n_words", "mask", "_ints")

    def __init__(self, matrix: np.ndarray, npat: int) -> None:
        self.matrix = matrix
        self.npat = npat
        self.n_words = matrix.shape[1]
        self.mask = (1 << npat) - 1
        self._ints: Dict[int, int] = {}

    def int_of(self, net: int) -> int:
        """All patterns of ``net`` as one int (bit p = pattern p)."""
        v = self._ints.get(net)
        if v is None:
            v = _words_to_int(self.matrix[net]) & self.mask
            self._ints[net] = v
        return v


class PackedWordSimulator:
    """Levelized bit-packed simulator (64 patterns per uint64 word).

    Drop-in backend for :class:`~repro.netlist.simulate.PackedSimulator`:
    same constructor, same ``good_values`` / ``faulty_values`` /
    ``capture`` / ``source_col`` surface — only the value containers
    differ (:class:`WordValues` and sparse int deltas instead of dicts of
    bool arrays).  Extra fast paths (:meth:`first_detection`,
    :meth:`detection_vector`, :meth:`failing_observations`) let the fault
    grader and scan tester skip unpacking entirely.
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.compiled = CompiledNetlist(netlist)
        self.source_nets = self.compiled.source_nets
        self.source_col = self.compiled.source_col

    @property
    def n_sources(self) -> int:
        """Number of pattern columns (primary inputs + flop state bits)."""
        return len(self.source_nets)

    # ------------------------------------------------------------------
    # Good-circuit simulation
    # ------------------------------------------------------------------
    def good_values(self, patterns: np.ndarray) -> WordValues:
        """Evaluate all nets for a (P, n_sources) bool pattern matrix."""
        patterns = np.asarray(patterns, dtype=bool)
        if patterns.ndim != 2 or patterns.shape[1] != self.n_sources:
            raise ValueError(
                f"patterns must be (P, {self.n_sources}), "
                f"got {patterns.shape}"
            )
        c = self.compiled
        npat = patterns.shape[0]
        packed = pack_patterns(patterns)
        matrix = np.zeros((c.n_nets, packed.shape[1]), dtype=np.uint64)
        if c.source_idx.size:
            matrix[c.source_idx] = packed
        for level in c.levels:
            for bucket in level:
                _eval_bucket(bucket, matrix)
        t = TELEMETRY
        if t.enabled:
            t.count("engine.good_sim.calls")
            t.count("engine.good_sim.patterns", npat)
            t.count(
                "engine.good_sim.net_words",
                c.n_nets * int(packed.shape[1]),
            )
        return WordValues(matrix, npat)

    # ------------------------------------------------------------------
    # Faulty re-simulation (cone-restricted, effect-death pruned)
    # ------------------------------------------------------------------
    def faulty_values(
        self, good: WordValues, fault: StuckAt
    ) -> Dict[int, int]:
        """Nets whose value changes under ``fault``, as packed ints.

        Only *differing* nets appear; a missing net equals the good value.
        Propagation is event-driven within the fault's fanout cone: a
        heap ordered by topological position holds exactly the gates with
        a changed input, so dead fault effects cost nothing — the walk
        ends the moment no net still differs from the good circuit.
        """
        if fault.flop is not None:
            # Flop D-pin fault affects only the capture, not the logic.
            return {}
        c = self.compiled
        mask = good.mask
        const = mask if fault.value else 0
        int_of = good.int_of
        delta: Dict[int, int] = {}
        readers = c.readers
        pos = c.topo_pos
        gate_tuples = c.gate_tuples
        heap: List[Tuple[int, int]] = []
        queued: Set[int] = set()

        def wake(net: int) -> None:
            for gid in readers[net]:
                if gid not in queued:
                    queued.add(gid)
                    heapq.heappush(heap, (pos[gid], gid))

        if fault.is_stem:
            if const == int_of(fault.net):
                if TELEMETRY.enabled:
                    TELEMETRY.count("engine.resim.calls")
                    TELEMETRY.count("engine.resim.dead")
                return delta  # stuck value equals good everywhere
            delta[fault.net] = const
            wake(fault.net)
        else:
            # Branch fault: only the faulted gate sees the stuck pin.
            queued.add(fault.gate)
            heapq.heappush(heap, (pos[fault.gate], fault.gate))
        pin_gate, pin = fault.gate, fault.pin
        while heap:
            _, gid = heapq.heappop(heap)
            gtype, g_inputs, g_output = gate_tuples[gid]
            ins = [
                delta[i] if i in delta else int_of(i) for i in g_inputs
            ]
            if gid == pin_gate:
                ins[pin] = const
            out = _eval_gate_int(gtype, ins, mask)
            if out != int_of(g_output):
                delta[g_output] = out
                wake(g_output)
        # Batched accounting: the walk itself stays untouched.  Every
        # queued gate was popped exactly once (the queued set is never
        # drained), so len(queued) is the event-driven re-eval count.
        t = TELEMETRY
        if t.enabled:
            t.count("engine.resim.calls")
            t.count("engine.resim.gate_evals", len(queued))
            if delta:
                t.observe("engine.resim.cone_nets", len(delta))
            else:
                t.count("engine.resim.dead")
        return delta

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def capture(
        self,
        values: WordValues,
        fault: Optional[StuckAt] = None,
        delta: Optional[Dict[int, int]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Extract (PO matrix, captured-state matrix) as bool arrays.

        ``delta`` (from :meth:`faulty_values`) overlays faulty-cone values;
        a flop D-pin ``fault`` forces its captured column.
        """
        c = self.compiled
        npat, n_words = values.npat, values.n_words
        po = (
            unpack_words(values.matrix[c.po_nets], npat)
            if c.po_nets.size
            else np.zeros((npat, 0), dtype=bool)
        )
        state = (
            unpack_words(values.matrix[c.flop_d_nets], npat)
            if c.flop_d_nets.size
            else np.zeros((npat, 0), dtype=bool)
        )
        if delta:
            for net, value in delta.items():
                cols = c.po_cols.get(net)
                if cols:
                    bits = _int_to_bits(value, npat, n_words)
                    for col in cols:
                        po[:, col] = bits
                fids = c.d_fids.get(net)
                if fids:
                    bits = _int_to_bits(value, npat, n_words)
                    for fid in fids:
                        state[:, fid] = bits
        if fault is not None and fault.flop is not None:
            state[:, fault.flop] = bool(fault.value)
        return po, state

    def unpack_net(self, values: WordValues, net: int) -> np.ndarray:
        """One net's values as a (P,) bool array."""
        return unpack_words(values.matrix[net : net + 1], values.npat)[:, 0]

    # ------------------------------------------------------------------
    # Detection fast paths (no unpacking)
    # ------------------------------------------------------------------
    def _mismatch(self, values: WordValues, fault: StuckAt) -> int:
        """Packed int of patterns on which any observation point differs."""
        if fault.flop is not None:
            flop = self.netlist.flops[fault.flop]
            const = values.mask if fault.value else 0
            return values.int_of(flop.d_net) ^ const
        obs = self.compiled.obs_nets
        mismatch = 0
        for net, value in self.faulty_values(values, fault).items():
            if net in obs:
                mismatch |= value ^ values.int_of(net)
        return mismatch

    def first_detection(
        self, values: WordValues, fault: StuckAt
    ) -> Optional[int]:
        """Index of the first pattern detecting ``fault``, or None."""
        m = self._mismatch(values, fault)
        if not m:
            return None
        return (m & -m).bit_length() - 1

    def detection_vector(
        self, values: WordValues, fault: StuckAt
    ) -> np.ndarray:
        """(P,) bool: which patterns detect ``fault``."""
        return _int_to_bits(
            self._mismatch(values, fault), values.npat, values.n_words
        )

    def failing_observations(
        self, values: WordValues, fault: StuckAt
    ) -> Tuple[Set[int], Set[int]]:
        """(flop fids, PO indices) that mismatch on any pattern."""
        fids: Set[int] = set()
        pos: Set[int] = set()
        if fault.flop is not None:
            if self._mismatch(values, fault):
                fids.add(fault.flop)
            return fids, pos
        c = self.compiled
        for net, value in self.faulty_values(values, fault).items():
            if net not in c.obs_nets:
                continue
            fids.update(c.d_fids.get(net, ()))
            pos.update(c.po_cols.get(net, ()))
        return fids, pos


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
#: Recognized fault-simulation backends.
BACKENDS = ("word", "legacy")


def make_simulator(netlist: Netlist, backend: str = "word"):
    """Build a fault-simulation engine by backend name.

    ``"word"`` is the bit-packed :class:`PackedWordSimulator` (default);
    ``"legacy"`` the dict-of-bool-arrays
    :class:`~repro.netlist.simulate.PackedSimulator` reference.
    """
    if backend == "word":
        return PackedWordSimulator(netlist)
    if backend == "legacy":
        from repro.netlist.simulate import PackedSimulator

        return PackedSimulator(netlist)
    raise ValueError(
        f"unknown fault-simulation backend {backend!r}; "
        f"expected one of {BACKENDS}"
    )
