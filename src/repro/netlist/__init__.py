"""Gate-level netlist substrate.

This package stands in for the commercial RTL/synthesis tooling the paper
used (Synopsys Design Compiler over a Verilog model).  It provides:

- :mod:`repro.netlist.gates` — gate and flip-flop primitives,
- :mod:`repro.netlist.netlist` — the :class:`Netlist` container with
  levelization, fanout maps, and cone queries,
- :mod:`repro.netlist.simulate` — scalar and numpy parallel-pattern
  simulation with stuck-at fault overrides (the reference engines),
- :mod:`repro.netlist.compiled` — the levelized structure-of-arrays
  netlist form and the bit-packed 64-patterns-per-word fault-simulation
  engine the ATPG/diagnosis stack runs on,
- :mod:`repro.netlist.build` — word-level construction helpers used by the
  gate-level pipeline models in :mod:`repro.rtl`.
"""

from repro.netlist.gates import Flop, Gate, GateType
from repro.netlist.netlist import Netlist, NetlistError
from repro.netlist.simulate import PackedSimulator, Simulator
from repro.netlist.compiled import (
    CompiledNetlist,
    PackedWordSimulator,
    make_simulator,
)
from repro.netlist.build import NetBuilder

__all__ = [
    "CompiledNetlist",
    "Flop",
    "Gate",
    "GateType",
    "NetBuilder",
    "Netlist",
    "NetlistError",
    "PackedSimulator",
    "PackedWordSimulator",
    "Simulator",
    "make_simulator",
]
