"""Auto-repair benchmark — verified-patch and plan-determinism gate.

Runs the ``repair`` campaign on the baseline RTL and on a hand-broken
Rescue variant, records the plan (violations found, candidates searched,
area added, verification outcome), and wall clock.  The CI gate
(``--check``) asserts the subsystem's headline properties:

1. **Every repair verifies** — the composed patched model passes the
   gate-level ICI netcheck and is bit-exact through the packed
   equivalence screen, with no unrepaired violations on either model.
2. **Plan determinism** — the emitted plan is bit-identical between
   serial and multi-worker execution, across a different chunking, and
   across a checkpoint/resume cycle.

Results land in ``BENCH_repair.json`` at the repo root.

Command line:

```
python benchmarks/bench_repair.py                 # measure + write JSON
python benchmarks/bench_repair.py --check         # CI gate, no JSON
python benchmarks/bench_repair.py --patterns 256 --workers 4
```
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if "repro" not in sys.modules:  # script mode: make src/ importable
    sys.path.insert(0, str(_REPO_ROOT / "src"))

RESULT_PATH = _REPO_ROOT / "BENCH_repair.json"


def _assert_invariance(spec, workers: int):
    """Serial, multi-worker, re-chunked, and resumed runs must agree."""
    from dataclasses import replace

    from repro.repair import run_repair

    serial = run_repair(spec, workers=1, checkpoint=False)
    parallel = run_repair(spec, workers=workers, checkpoint=False)
    if serial.to_json() != parallel.to_json():
        raise AssertionError(
            f"{workers}-worker repair plan differs from serial "
            f"({spec.model})"
        )
    rechunked = run_repair(
        replace(spec, chunk_size=spec.chunk_size + 3),
        workers=workers,
        checkpoint=False,
    )
    r, s = rechunked.to_json(), serial.to_json()
    for key in ("violations", "actions", "unrepaired", "extra_area",
                "patched_satisfied", "equivalent"):
        if r[key] != s[key]:
            raise AssertionError(
                f"re-chunked repair plan differs from serial on "
                f"{key!r} ({spec.model})"
            )
    with tempfile.TemporaryDirectory() as cache:
        fresh = run_repair(spec, workers=workers, cache_root=cache)
        resumed = run_repair(
            spec, workers=1, cache_root=cache, resume=True
        )
    if (fresh.to_json() != resumed.to_json()
            or fresh.to_json() != serial.to_json()):
        raise AssertionError(
            f"checkpoint/resume changed the repair plan ({spec.model})"
        )
    return serial


def _assert_verified(result, spec) -> None:
    """Every violation repaired; the composed patch re-verifies."""
    from repro.core.netcheck import check_netlist_ici
    from repro.repair import BaseState, build_model, patch_model
    from repro.repair.oracle import _equivalence_stage

    if result.unrepaired:
        raise AssertionError(
            f"{spec.model}: {len(result.unrepaired)} violations "
            f"unrepaired: {result.unrepaired}"
        )
    if not result.patched_satisfied:
        raise AssertionError(
            f"{spec.model}: patched model still violates ICI"
        )
    if not result.equivalent:
        raise AssertionError(
            f"{spec.model}: patched model not bit-exact vs base"
        )
    # Independent re-derivation from the plan alone.
    netlist, _breaks = build_model(spec)
    report = check_netlist_ici(netlist, exempt_blocks=spec.exempt)
    patched, _log = patch_model(spec, result.actions)
    if not check_netlist_ici(
        patched, exempt_blocks=spec.exempt
    ).satisfied:
        raise AssertionError(
            f"{spec.model}: re-applied plan fails netcheck"
        )
    base = BaseState.build(netlist, report, spec.n_patterns, spec.seed)
    verdict, _sim, _values = _equivalence_stage(base, patched, spec.seed)
    if verdict is not None:
        raise AssertionError(
            f"{spec.model}: re-applied plan fails equivalence: "
            f"{verdict.reason}"
        )


def _model_row(result, seconds: float) -> dict:
    counts = result.candidate_counts()
    kinds: dict = {}
    for a in result.actions:
        kinds[a.kind] = kinds.get(a.kind, 0) + 1
    return {
        "model": result.model,
        "seconds_all_runs": round(seconds, 4),
        "n_observers": result.n_observers,
        "n_violations": result.n_violations,
        "n_repaired": result.n_repaired,
        "n_unrepaired": len(result.unrepaired),
        "candidates_generated": counts["generated"],
        "candidates_verified": counts["verified"],
        "candidates_rejected": counts["rejected"],
        "actions_by_kind": kinds,
        "base_area": round(result.base_area, 4),
        "extra_area": round(result.extra_area, 4),
        "area_overhead_pct": round(
            100.0 * result.extra_area / result.base_area, 4
        ) if result.base_area else 0.0,
        "patched_satisfied": result.patched_satisfied,
        "equivalent": result.equivalent,
        "seeded_breaks": list(result.breaks),
    }


def measure(workers: int = 4, n_patterns: int = 192,
            seed: int = 0) -> dict:
    """Repair both violation-bearing models and record the plans."""
    from repro.repair import RepairSpec

    rows = []
    for model in ("baseline", "rescue-broken"):
        spec = RepairSpec(
            model=model, tiny=True, n_patterns=n_patterns, seed=seed
        )
        t0 = time.perf_counter()
        result = _assert_invariance(spec, workers)
        seconds = time.perf_counter() - t0
        _assert_verified(result, spec)
        rows.append(_model_row(result, seconds))

    host_cpus = os.cpu_count() or 1
    return {
        "campaign": (
            "repair: verified ICI patch search — candidates (relabel / "
            "cone redrive / latch staging) checked by netcheck + "
            "bit-exact packed equivalence + stuck-at isolation sample"
        ),
        "n_patterns": n_patterns,
        "workers": workers,
        "host_cpus": host_cpus,
        "models": rows,
        "agreement": (
            "plan bit-exact across workers/chunking/resume; every "
            "violation repaired and the composed patch re-verifies "
            "from the plan alone on both models"
        ),
    }


def check(workers: int = 2) -> None:
    """CI gate: verified repair + plan determinism on small specs."""
    from repro.repair import RepairSpec

    summaries = []
    for model in ("baseline", "rescue-broken"):
        spec = RepairSpec(
            model=model, tiny=True, n_patterns=96, chunk_size=4
        )
        result = _assert_invariance(spec, workers)
        _assert_verified(result, spec)
        summaries.append(
            f"{model}: {result.n_repaired}/{result.n_violations} repaired"
        )
    print(
        "repair check OK: "
        + "; ".join(summaries)
        + f"; {workers}-worker/re-chunked/resume plans bit-identical "
        "to serial, composed patches pass netcheck + bit-exact "
        "equivalence"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="verified-repair/determinism gate, no JSON "
                             "written")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--patterns", type=int, default=192,
                        help="equivalence patterns per candidate")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.check:
        check(workers=min(args.workers, 2))
        return 0

    result = measure(
        workers=args.workers, n_patterns=args.patterns, seed=args.seed
    )
    RESULT_PATH.write_text(json.dumps(result, indent=1) + "\n")
    print(json.dumps(result, indent=1))
    print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
