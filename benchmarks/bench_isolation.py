"""Section 6.1 — the random-fault isolation experiment.

Inserts ``RESCUE_FAULTS`` random stuck-at faults (default 600; the paper
used 6000) into the Rescue gate-level model, fault-simulates each against
the generated scan vectors, maps the failing scan bits through the
isolation table, and checks the blamed map-out block is the one physically
containing the fault.  The paper's result: all inserted faults isolate
correctly.  The same experiment on the baseline shows why ICI is needed:
a large fraction of faults are ambiguous or misattributed.

Fault simulation rides the bit-packed ``"word"`` backend (the
``generate_tests`` default): failing scan bits are read straight off
packed fault deltas, which is what makes the full 6000-fault run
practical — see ``bench_faultsim.py`` for the backend comparison.
"""

import time

from conftest import N_FAULTS, cache_json, print_table, save_json

from repro.rtl import RtlParams, build_baseline_rtl, build_rescue_rtl
from repro.rtl.experiment import generate_tests, isolation_experiment

_CACHE = f"isolation_{N_FAULTS}"


def _compute():
    cached = cache_json(_CACHE)
    if cached is not None:
        return cached
    out = {}
    for name, builder in (("rescue", build_rescue_rtl),
                          ("base", build_baseline_rtl)):
        t0 = time.time()
        setup = generate_tests(builder(RtlParams()), seed=0)
        stats = isolation_experiment(setup, n_faults=N_FAULTS, seed=1)
        out[name] = {
            "inserted": stats.inserted,
            "detected": stats.detected,
            "correct": stats.correct,
            "ambiguous": stats.ambiguous,
            "wrong": stats.wrong,
            "correct_rate": round(stats.correct_rate, 4),
            "by_block": stats.by_block,
            "seconds": round(time.time() - t0, 1),
        }
    save_json(_CACHE, out)
    return out


def test_isolation_experiment(benchmark):
    data = _compute()
    rows = []
    for name in ("base", "rescue"):
        d = data[name]
        rows.append((
            name, d["inserted"], d["detected"], d["correct"],
            d["ambiguous"], d["wrong"], f"{100 * d['correct_rate']:.1f}%",
        ))
    print_table(
        f"Section 6.1: isolation of {N_FAULTS} random faults "
        "(paper: 6000/6000 correct on Rescue)",
        ("design", "inserted", "detected", "correct", "ambiguous",
         "wrong", "correct rate"),
        rows,
    )
    per_block = sorted(data["rescue"]["by_block"].items())
    print_table(
        "Rescue: correctly isolated faults by map-out block",
        ("block", "faults"),
        per_block,
    )

    # The paper's claim: every detected fault isolates correctly on
    # Rescue, while the baseline misattributes a substantial fraction.
    assert data["rescue"]["correct_rate"] == 1.0
    assert data["base"]["correct_rate"] < 0.9

    # Benchmark one fault's isolation lookup (a single table access plus
    # the fault simulation that produces the failing bits).
    model = build_rescue_rtl(RtlParams.tiny())
    setup = generate_tests(model, seed=0, max_deterministic=0)

    from repro.atpg.faults import full_fault_universe

    fault = full_fault_universe(model.netlist)[20]

    def isolate_one():
        bits, pos = setup.tester.failing_bits(setup.atpg.patterns, fault)
        return setup.table.isolate(bits, pos)

    benchmark(isolate_one)
