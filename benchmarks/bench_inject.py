"""Fault-injection benchmark — masking validation + determinism gate.

Runs the degraded-mode masking experiment (the paper's headline
defect-tolerance property) and records the outcome distributions:
faults sampled only from mapped-out ICI blocks must classify 100%
``masked`` on the fully-degraded core, while the identical fault sites
on the full core (where those blocks are live) produce a nonzero
SDC/hang/detection rate.  Also verifies that campaign results are
bit-identical between serial and multi-worker execution, across a
checkpoint/resume cycle, and between every replay strategy — grouped
warm-core replay, ungrouped per-fault forking, scan-disabled forking
(the PR 6 behavior), and the from-scratch reference path, each at two
checkpoint intervals.  Performance is gated twice: total simulated
cycles forked vs from-scratch must drop by at least 3x, and
checkpoint-grouped replay with the sticky first-effect scan at a finer
interval must beat the PR 6 forked baseline by at least 2x wall clock
(both recorded in the JSON, along with peak RSS, the compressed
snapshot-arena footprint, and a cold/warm golden-prefix-cache probe —
a warm campaign must simulate zero golden cycles).

Results land in ``BENCH_inject.json`` at the repo root.

Command line:

```
python benchmarks/bench_inject.py                 # measure + write JSON
python benchmarks/bench_inject.py --check         # CI gate, no JSON
python benchmarks/bench_inject.py --faults 256 --workers 8
```

``--check`` runs a small campaign pair and asserts masking, worker /
resume invariance, replay-strategy equivalence, and the golden-cache
cold/warm contract, exiting nonzero on any violation without touching
the JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if "repro" not in sys.modules:  # script mode: make src/ importable
    sys.path.insert(0, str(_REPO_ROOT / "src"))

RESULT_PATH = _REPO_ROOT / "BENCH_inject.json"


def _masking(spec, workers: int):
    from repro.inject import masking_validation

    t0 = time.perf_counter()
    val = masking_validation(spec, workers=workers, checkpoint=False)
    return val, time.perf_counter() - t0


def _assert_masking(val) -> None:
    deg, full = val["degraded"], val["full"]
    if deg.outcomes["masked"] != deg.n:
        escaped = {
            k: v for k, v in deg.outcomes.items()
            if k != "masked" and v
        }
        raise AssertionError(
            f"faults escaped mapped-out blocks on the degraded core: "
            f"{escaped}"
        )
    if full.outcomes["masked"] >= full.n:
        raise AssertionError(
            "the same fault sites produced no visible outcome on the "
            "full core — the sample is not exercising live state"
        )


def _assert_invariance(spec, workers: int) -> None:
    from repro.inject import run_injection

    serial = run_injection(spec, workers=1, checkpoint=False)
    parallel = run_injection(spec, workers=workers, checkpoint=False)
    if serial != parallel:
        raise AssertionError(
            f"{workers}-worker InjectionStats differ from serial"
        )
    with tempfile.TemporaryDirectory() as cache:
        fresh = run_injection(spec, workers=workers, cache_root=cache)
        resumed = run_injection(
            spec, workers=1, cache_root=cache, resume=True
        )
    if fresh != resumed or fresh != serial:
        raise AssertionError("checkpoint/resume changed the result")


def _masking_specs(spec):
    """The masking-validation spec pair (degraded + full core)."""
    from dataclasses import replace

    from repro.inject import mapped_out_blocks
    from repro.inject.campaign import DIMENSIONS
    from repro.yieldmodel.configs import CoreCounts

    shadow = mapped_out_blocks(CoreCounts(**{d: 1 for d in DIMENSIONS}))
    return {
        "degraded": replace(spec, counts=(1,) * 6, blocks=shadow),
        "full": replace(spec, counts=(2,) * 6, blocks=shadow),
    }


def _assert_fork_equivalence(spec) -> None:
    """Every replay strategy must reproduce from-scratch stats
    bit-exactly on the masking-validation fault list, at any checkpoint
    interval: grouped warm-core replay, ungrouped per-fault forking,
    and scan-disabled forking (the PR 6 behavior)."""
    from dataclasses import replace

    from repro.inject import run_injection

    for name, s in _masking_specs(spec).items():
        scratch = run_injection(
            replace(s, fork=False), workers=1, checkpoint=False
        )
        for interval in (s.checkpoint_interval, 97):
            variants = {
                "grouped": replace(s, checkpoint_interval=interval),
                "ungrouped": replace(
                    s, grouped=False, checkpoint_interval=interval
                ),
                "unscanned": replace(
                    s, first_effect=False, checkpoint_interval=interval
                ),
            }
            for variant, vs in variants.items():
                forked = run_injection(vs, workers=1, checkpoint=False)
                if forked != scratch:
                    raise AssertionError(
                        f"{variant} InjectionStats (checkpoint "
                        f"interval {interval}) differ from "
                        f"from-scratch on the {name} core"
                    )


def _measure_suffix_replay(spec, workers: int) -> dict:
    """Run the masking campaign forked and from-scratch under telemetry
    and compare total simulated cycles and wall clock."""
    from dataclasses import replace

    from repro.inject import run_injection
    from repro.telemetry import TELEMETRY

    specs = _masking_specs(spec)
    TELEMETRY.enable()
    try:
        with TELEMETRY.collect() as m_fork:
            t0 = time.perf_counter()
            for s in specs.values():
                run_injection(s, workers=workers, checkpoint=False)
            fork_wall = time.perf_counter() - t0
        with TELEMETRY.collect() as m_scratch:
            t0 = time.perf_counter()
            for s in specs.values():
                run_injection(
                    replace(s, fork=False), workers=workers,
                    checkpoint=False,
                )
            scratch_wall = time.perf_counter() - t0
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()

    forked = m_fork.counters.get("inject.sim_cycles", 0)
    scratch = m_scratch.counters.get("inject.sim_cycles", 0)
    if not forked or not scratch:
        raise AssertionError("inject.sim_cycles telemetry missing")
    ratio = scratch / forked
    if ratio < 3.0:
        raise AssertionError(
            f"suffix replay simulated-cycle reduction {ratio:.2f}x "
            f"is below the 3x gate"
        )
    return {
        "checkpoint_interval": spec.checkpoint_interval,
        "cycles_simulated": {
            "forked": forked,
            "scratch": scratch,
            "ratio": round(ratio, 2),
        },
        "wall_seconds": {
            "forked": round(fork_wall, 4),
            "scratch": round(scratch_wall, 4),
            "speedup": round(scratch_wall / fork_wall, 2),
        },
        "fork_restores": m_fork.counters.get("inject.fork_restores", 0),
        "early_exits": m_fork.counters.get("inject.early_exits", 0),
        "cycles_saved": m_fork.counters.get("inject.cycles_saved", 0),
        "note": (
            "faulty-run cycles only; the golden run is simulated once "
            "per configuration in both modes"
        ),
    }


def _measure_grouped_replay(spec, workers: int) -> dict:
    """PR 6 forked baseline vs checkpoint-grouped replay + scan.

    Both legs run the full masking campaign end-to-end — golden
    simulation, first-effect scan, and every faulty replay inside the
    timed region.  The baseline reproduces PR 6 behavior exactly
    (ungrouped per-fault forking, no scan, the coarse default
    interval); the contender is this PR's default strategy at a finer
    checkpoint interval.  Gated at a 2x wall-clock speedup.
    """
    from dataclasses import replace

    from repro.inject import run_injection
    from repro.inject import campaign as campaign_mod
    from repro.telemetry import TELEMETRY

    fine = 48
    specs = _masking_specs(spec)
    baseline = {
        name: replace(
            s, grouped=False, first_effect=False, checkpoint_interval=128
        )
        for name, s in specs.items()
    }
    contender = {
        name: replace(s, checkpoint_interval=fine)
        for name, s in specs.items()
    }
    TELEMETRY.enable()
    try:
        with TELEMETRY.collect() as m_base:
            t0 = time.perf_counter()
            base_stats = {}
            for name, s in baseline.items():
                campaign_mod._INJECT.clear()
                base_stats[name] = run_injection(
                    s, workers=workers, checkpoint=False
                )
            base_wall = time.perf_counter() - t0
        arena = {}
        with TELEMETRY.collect() as m_grp:
            t0 = time.perf_counter()
            grp_stats = {}
            for name, s in contender.items():
                campaign_mod._INJECT.clear()
                grp_stats[name] = run_injection(
                    s, workers=workers, checkpoint=False
                )
                arena[name] = campaign_mod._INJECT[
                    "golden"
                ].arena.stats()
            grp_wall = time.perf_counter() - t0
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()
    if grp_stats != base_stats:
        raise AssertionError(
            "grouped+scanned campaign stats differ from the PR 6 "
            "baseline"
        )
    for name, stats in arena.items():
        if stats["compressed_bytes"] >= stats["raw_bytes"]:
            raise AssertionError(
                f"snapshot arena did not compress on the {name} core: "
                f"{stats}"
            )
    speedup = base_wall / grp_wall
    if speedup < 2.0:
        raise AssertionError(
            f"grouped replay wall speedup {speedup:.2f}x over the PR 6 "
            f"forked baseline is below the 2x gate"
        )
    return {
        "baseline": {
            "strategy": "ungrouped fork, no first-effect scan (PR 6)",
            "checkpoint_interval": 128,
            "wall_seconds": round(base_wall, 4),
        },
        "grouped": {
            "strategy": "checkpoint-grouped + sticky first-effect scan",
            "checkpoint_interval": fine,
            "wall_seconds": round(grp_wall, 4),
            "restore_reuses": m_grp.counters.get(
                "inject.restore_reuses", 0
            ),
            "scan_skips": m_grp.counters.get("inject.scan_skips", 0),
            "scan_cycles": m_grp.counters.get("inject.scan_cycles", 0),
        },
        "wall_speedup": round(speedup, 2),
        "arena": arena,
        "note": (
            "end-to-end wall clock per leg: golden simulation, "
            "first-effect scan, and all faulty replays included; "
            "classifications bit-identical between legs"
        ),
    }


def _golden_cache_probe(spec, workers: int = 1) -> dict:
    """Cold-then-warm campaign against a fresh golden-prefix cache.

    The cold run must simulate and store the golden prefix; the warm
    run must load it — zero golden cycles simulated — and reproduce the
    cold stats bit-exactly.
    """
    from dataclasses import replace

    from repro.inject import run_injection
    from repro.inject import campaign as campaign_mod
    from repro.telemetry import TELEMETRY

    s = replace(spec, golden_cache=True)
    saved = os.environ.get("REPRO_CACHE_DIR")
    with tempfile.TemporaryDirectory() as cache:
        os.environ["REPRO_CACHE_DIR"] = cache
        TELEMETRY.enable()
        try:
            campaign_mod._INJECT.clear()
            with TELEMETRY.collect() as cold:
                cold_stats = run_injection(
                    s, workers=workers, checkpoint=False
                )
            campaign_mod._INJECT.clear()
            with TELEMETRY.collect() as warm:
                warm_stats = run_injection(
                    s, workers=workers, checkpoint=False
                )
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
            campaign_mod._INJECT.clear()
            if saved is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = saved
    if warm_stats != cold_stats:
        raise AssertionError(
            "warm golden-cache campaign stats differ from cold"
        )
    cold_golden = cold.counters.get("inject.golden_sim_cycles", 0)
    warm_golden = warm.counters.get("inject.golden_sim_cycles", 0)
    hits = warm.counters.get("inject.golden_cache_hits", 0)
    if not cold_golden:
        raise AssertionError("cold run did not simulate a golden prefix")
    if cold.counters.get("inject.golden_cache_hits", 0):
        raise AssertionError("cold run hit a supposedly empty cache")
    if warm_golden:
        raise AssertionError(
            f"warm golden-cache run simulated {warm_golden} golden "
            f"cycles (expected 0)"
        )
    if not hits:
        raise AssertionError("warm run did not hit the golden cache")
    return {
        "cold_golden_cycles": cold_golden,
        "warm_golden_cycles": warm_golden,
        "warm_cache_hits": hits,
        "agreement": "warm stats bit-identical to cold",
    }


def _peak_rss_kb() -> int:
    """Peak resident set of this process and its workers, in KiB."""
    import resource

    return max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )


def measure(n_faults: int = 128, workers: int = 4, seed: int = 0,
            n_instructions: int = 2000) -> dict:
    """Run the masking validation and record outcome distributions."""
    from repro.inject import InjectionSpec

    spec = InjectionSpec(
        n_instructions=n_instructions,
        n_faults=n_faults,
        seed=seed,
        chunk_size=max(1, n_faults // (workers * 4)),
    )
    val, seconds = _masking(spec, workers)
    _assert_masking(val)
    _assert_invariance(spec, workers)
    _assert_fork_equivalence(spec)
    suffix = _measure_suffix_replay(spec, workers)
    grouped = _measure_grouped_replay(spec, workers)
    cache = _golden_cache_probe(spec)

    deg, full = val["degraded"], val["full"]
    host_cpus = os.cpu_count() or 1
    return {
        "campaign": (
            "masking validation (faults in mapped-out ICI blocks, "
            "degraded vs full core)"
        ),
        "benchmark": spec.benchmark,
        "n_instructions": spec.n_instructions,
        "n_faults_per_config": n_faults,
        "model": spec.model,
        "workers": workers,
        "host_cpus": host_cpus,
        "seconds": round(seconds, 4),
        "degraded_outcomes": deg.outcomes,
        "full_outcomes": full.outcomes,
        "degraded_masked_rate": deg.rate("masked"),
        "full_sdc_rate": round(full.rate("sdc"), 4),
        "masking": "100% masked in mapped-out blocks",
        "agreement": (
            "bit-exact across workers/chunking/resume and grouped/"
            "ungrouped/unscanned fork vs from-scratch"
        ),
        "suffix_replay": suffix,
        "grouped_replay": grouped,
        "golden_cache": cache,
        "peak_rss_kb": _peak_rss_kb(),
    }


def check(workers: int = 2) -> None:
    """CI gate: masking + determinism on a small sample (no JSON)."""
    from repro.inject import InjectionSpec

    spec = InjectionSpec(n_instructions=1200, n_faults=24, chunk_size=6)
    val, _ = _masking(spec, workers)
    _assert_masking(val)
    _assert_invariance(spec, workers)
    _assert_fork_equivalence(spec)
    suffix = _measure_suffix_replay(spec, workers=1)
    cache = _golden_cache_probe(spec)
    deg, full = val["degraded"], val["full"]
    print(
        "inject check OK: "
        f"degraded {deg.outcomes['masked']}/{deg.n} masked, "
        f"full core outcomes {full.outcomes}, "
        f"{workers}-worker/resume runs bit-identical to serial, "
        f"grouped == ungrouped == unscanned == scratch at 2 "
        f"checkpoint intervals, "
        f"{suffix['cycles_simulated']['ratio']}x fewer simulated cycles "
        f"({suffix['early_exits']} early exits), "
        f"warm golden cache: {cache['warm_cache_hits']} hits / "
        f"{cache['warm_golden_cycles']} golden cycles simulated"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="masking/determinism gate, no JSON written")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--faults", type=int, default=128,
                        help="injections per configuration")
    parser.add_argument("--instructions", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.check:
        check(workers=min(args.workers, 2))
        return 0

    result = measure(
        n_faults=args.faults, workers=args.workers, seed=args.seed,
        n_instructions=args.instructions,
    )
    RESULT_PATH.write_text(json.dumps(result, indent=1) + "\n")
    print(json.dumps(result, indent=1))
    print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
