"""Fault-injection benchmark — masking validation + determinism gate.

Runs the degraded-mode masking experiment (the paper's headline
defect-tolerance property) and records the outcome distributions:
faults sampled only from mapped-out ICI blocks must classify 100%
``masked`` on the fully-degraded core, while the identical fault sites
on the full core (where those blocks are live) produce a nonzero
SDC/hang/detection rate.  Also verifies that campaign results are
bit-identical between serial and multi-worker execution, across a
checkpoint/resume cycle, and between checkpointed suffix replay
(``fork=True``, at two different checkpoint intervals) and the
from-scratch reference path — and measures the suffix-replay win:
total simulated cycles forked vs from-scratch must drop by at least
3x on the masking campaign (recorded with wall-clock speedup in the
JSON).

Results land in ``BENCH_inject.json`` at the repo root.

Command line:

```
python benchmarks/bench_inject.py                 # measure + write JSON
python benchmarks/bench_inject.py --check         # CI gate, no JSON
python benchmarks/bench_inject.py --faults 256 --workers 8
```

``--check`` runs a small campaign pair and asserts masking plus
worker/resume invariance, exiting nonzero on any violation without
touching the JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if "repro" not in sys.modules:  # script mode: make src/ importable
    sys.path.insert(0, str(_REPO_ROOT / "src"))

RESULT_PATH = _REPO_ROOT / "BENCH_inject.json"


def _masking(spec, workers: int):
    from repro.inject import masking_validation

    t0 = time.perf_counter()
    val = masking_validation(spec, workers=workers, checkpoint=False)
    return val, time.perf_counter() - t0


def _assert_masking(val) -> None:
    deg, full = val["degraded"], val["full"]
    if deg.outcomes["masked"] != deg.n:
        escaped = {
            k: v for k, v in deg.outcomes.items()
            if k != "masked" and v
        }
        raise AssertionError(
            f"faults escaped mapped-out blocks on the degraded core: "
            f"{escaped}"
        )
    if full.outcomes["masked"] >= full.n:
        raise AssertionError(
            "the same fault sites produced no visible outcome on the "
            "full core — the sample is not exercising live state"
        )


def _assert_invariance(spec, workers: int) -> None:
    from repro.inject import run_injection

    serial = run_injection(spec, workers=1, checkpoint=False)
    parallel = run_injection(spec, workers=workers, checkpoint=False)
    if serial != parallel:
        raise AssertionError(
            f"{workers}-worker InjectionStats differ from serial"
        )
    with tempfile.TemporaryDirectory() as cache:
        fresh = run_injection(spec, workers=workers, cache_root=cache)
        resumed = run_injection(
            spec, workers=1, cache_root=cache, resume=True
        )
    if fresh != resumed or fresh != serial:
        raise AssertionError("checkpoint/resume changed the result")


def _masking_specs(spec):
    """The masking-validation spec pair (degraded + full core)."""
    from dataclasses import replace

    from repro.inject import mapped_out_blocks
    from repro.inject.campaign import DIMENSIONS
    from repro.yieldmodel.configs import CoreCounts

    shadow = mapped_out_blocks(CoreCounts(**{d: 1 for d in DIMENSIONS}))
    return {
        "degraded": replace(spec, counts=(1,) * 6, blocks=shadow),
        "full": replace(spec, counts=(2,) * 6, blocks=shadow),
    }


def _assert_fork_equivalence(spec) -> None:
    """Suffix replay must reproduce from-scratch stats bit-exactly on
    the masking-validation fault list, at any checkpoint interval."""
    from dataclasses import replace

    from repro.inject import run_injection

    for name, s in _masking_specs(spec).items():
        scratch = run_injection(
            replace(s, fork=False), workers=1, checkpoint=False
        )
        for interval in (s.checkpoint_interval, 97):
            forked = run_injection(
                replace(s, fork=True, checkpoint_interval=interval),
                workers=1, checkpoint=False,
            )
            if forked != scratch:
                raise AssertionError(
                    f"forked InjectionStats (checkpoint interval "
                    f"{interval}) differ from from-scratch on the "
                    f"{name} core"
                )


def _measure_suffix_replay(spec, workers: int) -> dict:
    """Run the masking campaign forked and from-scratch under telemetry
    and compare total simulated cycles and wall clock."""
    from dataclasses import replace

    from repro.inject import run_injection
    from repro.telemetry import TELEMETRY

    specs = _masking_specs(spec)
    TELEMETRY.enable()
    try:
        with TELEMETRY.collect() as m_fork:
            t0 = time.perf_counter()
            for s in specs.values():
                run_injection(s, workers=workers, checkpoint=False)
            fork_wall = time.perf_counter() - t0
        with TELEMETRY.collect() as m_scratch:
            t0 = time.perf_counter()
            for s in specs.values():
                run_injection(
                    replace(s, fork=False), workers=workers,
                    checkpoint=False,
                )
            scratch_wall = time.perf_counter() - t0
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()

    forked = m_fork.counters.get("inject.sim_cycles", 0)
    scratch = m_scratch.counters.get("inject.sim_cycles", 0)
    if not forked or not scratch:
        raise AssertionError("inject.sim_cycles telemetry missing")
    ratio = scratch / forked
    if ratio < 3.0:
        raise AssertionError(
            f"suffix replay simulated-cycle reduction {ratio:.2f}x "
            f"is below the 3x gate"
        )
    return {
        "checkpoint_interval": spec.checkpoint_interval,
        "cycles_simulated": {
            "forked": forked,
            "scratch": scratch,
            "ratio": round(ratio, 2),
        },
        "wall_seconds": {
            "forked": round(fork_wall, 4),
            "scratch": round(scratch_wall, 4),
            "speedup": round(scratch_wall / fork_wall, 2),
        },
        "fork_restores": m_fork.counters.get("inject.fork_restores", 0),
        "early_exits": m_fork.counters.get("inject.early_exits", 0),
        "cycles_saved": m_fork.counters.get("inject.cycles_saved", 0),
        "note": (
            "faulty-run cycles only; the golden run is simulated once "
            "per configuration in both modes"
        ),
    }


def measure(n_faults: int = 128, workers: int = 4, seed: int = 0,
            n_instructions: int = 2000) -> dict:
    """Run the masking validation and record outcome distributions."""
    from repro.inject import InjectionSpec

    spec = InjectionSpec(
        n_instructions=n_instructions,
        n_faults=n_faults,
        seed=seed,
        chunk_size=max(1, n_faults // (workers * 4)),
    )
    val, seconds = _masking(spec, workers)
    _assert_masking(val)
    _assert_invariance(spec, workers)
    _assert_fork_equivalence(spec)
    suffix = _measure_suffix_replay(spec, workers)

    deg, full = val["degraded"], val["full"]
    host_cpus = os.cpu_count() or 1
    return {
        "campaign": (
            "masking validation (faults in mapped-out ICI blocks, "
            "degraded vs full core)"
        ),
        "benchmark": spec.benchmark,
        "n_instructions": spec.n_instructions,
        "n_faults_per_config": n_faults,
        "model": spec.model,
        "workers": workers,
        "host_cpus": host_cpus,
        "seconds": round(seconds, 4),
        "degraded_outcomes": deg.outcomes,
        "full_outcomes": full.outcomes,
        "degraded_masked_rate": deg.rate("masked"),
        "full_sdc_rate": round(full.rate("sdc"), 4),
        "masking": "100% masked in mapped-out blocks",
        "agreement": (
            "bit-exact across workers/chunking/resume and fork "
            "vs from-scratch"
        ),
        "suffix_replay": suffix,
    }


def check(workers: int = 2) -> None:
    """CI gate: masking + determinism on a small sample (no JSON)."""
    from repro.inject import InjectionSpec

    spec = InjectionSpec(n_instructions=1200, n_faults=24, chunk_size=6)
    val, _ = _masking(spec, workers)
    _assert_masking(val)
    _assert_invariance(spec, workers)
    _assert_fork_equivalence(spec)
    suffix = _measure_suffix_replay(spec, workers=1)
    deg, full = val["degraded"], val["full"]
    print(
        "inject check OK: "
        f"degraded {deg.outcomes['masked']}/{deg.n} masked, "
        f"full core outcomes {full.outcomes}, "
        f"{workers}-worker/resume runs bit-identical to serial, "
        f"fork == scratch at 2 checkpoint intervals, "
        f"{suffix['cycles_simulated']['ratio']}x fewer simulated cycles "
        f"({suffix['early_exits']} early exits)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="masking/determinism gate, no JSON written")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--faults", type=int, default=128,
                        help="injections per configuration")
    parser.add_argument("--instructions", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.check:
        check(workers=min(args.workers, 2))
        return 0

    result = measure(
        n_faults=args.faults, workers=args.workers, seed=args.seed,
        n_instructions=args.instructions,
    )
    RESULT_PATH.write_text(json.dumps(result, indent=1) + "\n")
    print(json.dumps(result, indent=1))
    print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
