"""Telemetry overhead benchmark — grading throughput on vs off.

The telemetry subsystem promises two things this benchmark holds it to:

1. **Zero cost when off.**  Fault grading with telemetry disabled must
   stay within noise of the engine's recorded throughput
   (``BENCH_faultsim.json``, word backend) — the instrumentation points
   compile down to one attribute test each.

2. **Cheap when on.**  Enabling counters/histograms/spans may cost at
   most a few percent: the engine batches its counts at cone-walk and
   grading-call boundaries instead of per gate.

Both timings grade the identical fault universe and pattern set, and the
resulting detection maps are asserted bit-exact before any number is
reported — instrumentation must observe, never perturb.

The run also exercises the campaign-metrics contract: a sharded
isolation campaign at ``--workers 1`` and ``--workers 2`` must produce
bit-identical deterministic metric views (counters + histograms), the
same invariance the campaign results themselves obey.

Results land in ``BENCH_telemetry.json`` at the repo root.

Command line:

```
python benchmarks/bench_telemetry.py           # measure + write JSON
python benchmarks/bench_telemetry.py --check   # pre-merge gate (<30 s)
python benchmarks/bench_telemetry.py --reps 5
```

``--check`` asserts the disabled path records nothing, on/off grades are
bit-exact, worker-count metric invariance holds, and enabled overhead
stays under a loose CI-noise bound, without touching the JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parents[1]
if "repro" not in sys.modules:  # script mode: make src/ importable
    sys.path.insert(0, str(_REPO_ROOT / "src"))

RESULT_PATH = _REPO_ROOT / "BENCH_telemetry.json"
FAULTSIM_RECORD = _REPO_ROOT / "BENCH_faultsim.json"


def _grading_setup(n_patterns: int, seed: int):
    from repro.atpg.collapse import collapse_faults
    from repro.atpg.faults import full_fault_universe
    from repro.netlist.compiled import make_simulator
    from repro.rtl import RtlParams, build_rescue_rtl
    from repro.scan import insert_scan

    model = build_rescue_rtl(RtlParams.tiny())
    netlist = model.netlist
    insert_scan(netlist)
    faults = collapse_faults(netlist, full_fault_universe(netlist))
    sim = make_simulator(netlist, "word")
    rng = np.random.default_rng(seed)
    patterns = rng.integers(
        0, 2, size=(n_patterns, sim.n_sources)
    ).astype(bool)
    return netlist, faults, sim, patterns


def _time_grading(netlist, faults, sim, patterns, reps: int):
    """Best-of-``reps`` grading time and the (identical) grade object."""
    from repro.atpg.faultsim import grade_faults

    best = float("inf")
    grade = None
    for _ in range(reps):
        t0 = time.perf_counter()
        grade = grade_faults(netlist, faults, patterns, sim=sim)
        best = min(best, time.perf_counter() - t0)
    return best, grade


def _time_grading_interleaved(netlist, faults, sim, patterns, reps: int):
    """Best-of-``reps`` for telemetry off and on, reps alternating.

    Alternation makes both modes sample the same noise environment —
    on a shared (or single-core) host, two back-to-back timing blocks
    can easily differ by more than the effect being measured.
    """
    from repro.atpg.faultsim import grade_faults
    from repro.telemetry import TELEMETRY

    best = {False: float("inf"), True: float("inf")}
    grades = {}
    for _ in range(reps):
        for enabled in (False, True):
            TELEMETRY.enabled = enabled
            t0 = time.perf_counter()
            grades[enabled] = grade_faults(
                netlist, faults, patterns, sim=sim
            )
            best[enabled] = min(
                best[enabled], time.perf_counter() - t0
            )
    TELEMETRY.disable()
    return best[False], best[True], grades[False], grades[True]


def _assert_same_grade(g_off, g_on) -> None:
    if g_off.detected != g_on.detected:
        raise AssertionError("telemetry changed detection maps")
    if g_off.undetected != g_on.undetected:
        raise AssertionError("telemetry changed undetected lists")


def _runner_metric_views(n_faults: int, chunk: int, workers):
    """Deterministic metric views of the isolation campaign per worker
    count (payloads asserted identical along the way)."""
    from repro.runner import IsolationSpec, prepare_isolation, run_isolation
    from repro.telemetry import TELEMETRY

    spec = IsolationSpec(
        tiny=True, n_faults=n_faults, max_deterministic=0,
        chunk_size=chunk,
    )
    # Prepare once, outside every collect scope: the first run must not
    # absorb one-time setup work (ATPG, cache warmup) the others skip.
    prepare_isolation(spec)
    TELEMETRY.enable()
    views = {}
    payload = None
    try:
        for w in workers:
            with TELEMETRY.collect() as m:
                stats = run_isolation(spec, workers=w, checkpoint=False)
            if payload is None:
                payload = stats
            elif stats != payload:
                raise AssertionError(
                    f"workers={w} campaign result differs from serial"
                )
            views[w] = m.deterministic()
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()
    return views


def measure(n_patterns: int = 512, seed: int = 0, reps: int = 5) -> dict:
    """Time grading with telemetry off and on; verify invariance."""
    from repro.telemetry import TELEMETRY

    netlist, faults, sim, patterns = _grading_setup(n_patterns, seed)
    evals = len(faults) * n_patterns

    # Disabled-records-nothing invariant, checked on a clean registry
    # before the timing loop mixes modes.
    TELEMETRY.disable()
    TELEMETRY.reset()
    _time_grading(netlist, faults, sim, patterns, reps=1)
    assert TELEMETRY.metrics.is_empty(), "disabled run recorded metrics"

    try:
        t_off, t_on, g_off, g_on = _time_grading_interleaved(
            netlist, faults, sim, patterns, reps
        )
        counters = dict(TELEMETRY.metrics.counters)
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()
    _assert_same_grade(g_off, g_on)

    overhead_pct = 100.0 * (t_on - t_off) / t_off
    disabled_rate = evals / t_off

    vs_record = None
    if FAULTSIM_RECORD.exists():
        record = json.loads(FAULTSIM_RECORD.read_text())
        rec_rate = record["backends"]["word"]["evals_per_sec"]
        vs_record = {
            "recorded_evals_per_sec": rec_rate,
            "disabled_over_recorded": round(disabled_rate / rec_rate, 3),
        }

    views = _runner_metric_views(n_faults=300, chunk=50, workers=(1, 2))
    runner_invariant = views[1] == views[2]
    if not runner_invariant:
        raise AssertionError(
            "campaign metrics differ between --workers 1 and --workers 2"
        )

    return {
        "netlist": netlist.stats(),
        "n_faults": len(faults),
        "n_patterns": n_patterns,
        "fault_pattern_evals": evals,
        "reps": reps,
        "grade_seconds_disabled": round(t_off, 4),
        "grade_seconds_enabled": round(t_on, 4),
        "evals_per_sec_disabled": round(disabled_rate),
        "evals_per_sec_enabled": round(evals / t_on),
        "enabled_overhead_pct": round(overhead_pct, 2),
        "vs_faultsim_record": vs_record,
        "grades_bit_exact_on_vs_off": True,
        "runner_metrics_invariant_across_workers": runner_invariant,
        "runner_counters_sample": {
            k: views[1]["counters"][k]
            for k in sorted(views[1]["counters"])[:8]
        },
        "enabled_counters_during_grading": {
            k: counters[k] for k in sorted(counters)
        },
    }


def check(seed: int = 0) -> None:
    """Pre-merge gate: invariance + a loose overhead bound (<30 s).

    The 50% overhead ceiling is deliberately loose — CI boxes are noisy
    and the sample is small; the recorded measurement in
    ``BENCH_telemetry.json`` is where the <3% claim is held.
    """
    from repro.telemetry import TELEMETRY

    netlist, faults, sim, patterns = _grading_setup(
        n_patterns=128, seed=seed
    )

    TELEMETRY.disable()
    TELEMETRY.reset()
    t_off, g_off = _time_grading(netlist, faults, sim, patterns, reps=2)
    assert TELEMETRY.metrics.is_empty(), (
        "disabled telemetry recorded metrics"
    )

    TELEMETRY.enable()
    try:
        t_on, g_on = _time_grading(netlist, faults, sim, patterns, reps=2)
        assert not TELEMETRY.metrics.is_empty(), (
            "enabled telemetry recorded nothing"
        )
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()
    _assert_same_grade(g_off, g_on)
    overhead_pct = 100.0 * (t_on - t_off) / t_off
    assert overhead_pct < 50.0, (
        f"enabled overhead {overhead_pct:.1f}% exceeds the loose CI bound"
    )

    views = _runner_metric_views(n_faults=60, chunk=13, workers=(1, 2))
    assert views[1] == views[2], (
        "campaign metrics differ between --workers 1 and --workers 2"
    )
    assert views[1]["counters"], "campaign collected no counters"

    print(
        f"telemetry check OK: {len(faults)} faults x "
        f"{patterns.shape[0]} patterns bit-exact on/off "
        f"(overhead {overhead_pct:+.1f}%), campaign metrics "
        f"bit-identical across worker counts"
    )


def _print_result(data: dict) -> None:
    print(f"\n=== Telemetry overhead: tiny Rescue core "
          f"({data['netlist']['gates']} gates) ===")
    print(f"{data['n_faults']} faults x {data['n_patterns']} patterns, "
          f"best of {data['reps']}")
    print(f"  disabled: {data['grade_seconds_disabled']:8.3f} s   "
          f"{data['evals_per_sec_disabled']:>12,} evals/s")
    print(f"  enabled:  {data['grade_seconds_enabled']:8.3f} s   "
          f"{data['evals_per_sec_enabled']:>12,} evals/s")
    print(f"  overhead: {data['enabled_overhead_pct']:+.2f}%")
    if data["vs_faultsim_record"]:
        ratio = data["vs_faultsim_record"]["disabled_over_recorded"]
        print(f"  disabled vs BENCH_faultsim.json word record: "
              f"{ratio:.2f}x")
    print("  campaign metrics bit-identical across --workers 1/2: "
          f"{data['runner_metrics_invariant_across_workers']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check", action="store_true",
        help="invariance gate only (no JSON written)",
    )
    parser.add_argument("--patterns", type=int, default=512)
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.check:
        check(seed=args.seed)
        return 0
    data = measure(
        n_patterns=args.patterns, seed=args.seed, reps=args.reps
    )
    _print_result(data)
    RESULT_PATH.write_text(json.dumps(data, indent=1) + "\n")
    print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
