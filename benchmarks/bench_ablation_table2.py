"""Ablation — sensitivity to the Table 2 reconstruction.

Three of the paper's Table 2 cells are illegible in the source scan; we
reconstructed frontend/iq_int/iq_fp as 12%/3%/2% (DESIGN.md).  This
ablation re-runs the YAT comparison with the 17% residual split very
differently and shows the Rescue-vs-CS conclusion is insensitive to the
choice — the gap moves by at most a couple of points.
"""

from conftest import print_table

from repro.yieldmodel import FaultDensityModel, YatModel
from repro.yieldmodel.area import AreaModel
from repro.yieldmodel.yat import flat_rescue_ipc

#: Alternative splits of the 17% residual (frontend, iq_int, iq_fp).
SPLITS = {
    "ours (12/3/2)": (0.12, 0.03, 0.02),
    "frontend-light (8/5/4)": (0.08, 0.05, 0.04),
    "frontend-heavy (15/1/1)": (0.15, 0.01, 0.01),
}


def _penalty(cfg):
    factor = 1.0
    for dim, cost in (("frontend", 0.82), ("int_backend", 0.78),
                      ("fp_backend", 0.96), ("iq_int", 0.93),
                      ("iq_fp", 0.98), ("lsq", 0.94)):
        if getattr(cfg, dim) == 1:
            factor *= cost
    return factor


def _fractions(split):
    fe, qi, qf = split
    return {
        "frontend": fe,
        "int_backend": 0.15,
        "fp_backend": 0.21,
        "iq_int": qi,
        "iq_fp": qf,
        "lsq": 0.07,
        "chipkill": 0.40,
    }


def test_table2_reconstruction_sensitivity(benchmark):
    import dataclasses

    density = FaultDensityModel(stagnation_node_nm=90)
    rows = []
    gains = {}
    for name, split in SPLITS.items():
        model = YatModel(
            density=density,
            growth=0.3,
            baseline_ipc=2.05,
            rescue_ipc=flat_rescue_ipc(2.0, _penalty),
        )
        # Patch the area fractions through a bespoke evaluate: reuse the
        # model but swap AreaModel fractions by monkey-level composition.
        import numpy as np

        from repro.yieldmodel.configs import config_probabilities
        from repro.yieldmodel.growth import cores_per_chip
        from repro.yieldmodel.negbin import GammaMixing

        results = {}
        for node in (32, 18):
            areas = AreaModel(growth=0.3, fractions=_fractions(split))
            k = cores_per_chip(node, 0.3)
            d = density.density(node)
            mixing = GammaMixing(density=d, alpha=density.alpha)
            groups = areas.group_areas(node)
            base_area = areas.baseline_core_area(node)
            cs = 2.05 * k * mixing.expect(
                lambda lam: np.exp(-lam * base_area)
            )

            def core(lam):
                probs = config_probabilities(lam, groups)
                acc = np.zeros_like(np.asarray(lam, dtype=float))
                for key, p in probs.items():
                    acc = acc + p * model.rescue_ipc[key]
                return acc

            rescue = k * mixing.expect(core)
            results[node] = rescue / cs - 1
        gains[name] = results
        rows.append((
            name, f"{100 * results[32]:+.1f}%", f"{100 * results[18]:+.1f}%",
        ))
    print_table(
        "Ablation: Table 2 reconstruction (Rescue/CS gain, 30% growth)",
        ("residual split", "@32nm", "@18nm"),
        rows,
    )
    # The conclusion must not hinge on the reconstruction: all splits
    # give positive gains of the same order.
    vals = [g[18] for g in gains.values()]
    assert min(vals) > 0.5 * max(vals) > 0

    benchmark(lambda: AreaModel(growth=0.3).group_areas(18))
