"""Ablation — decomposing Rescue's IPC cost (DESIGN.md §5.3).

Separates the two sources of the Figure 8 degradation:

- the +2-cycle branch misprediction penalty from the routing/rename shift
  stages (isolated by running the *baseline* queue with the longer
  penalty), and
- the ICI issue-queue policy — segmented compaction, per-half selection
  and replay, the extra issue-to-free cycle (isolated by running Rescue
  with the baseline's penalty).
"""

import dataclasses

from conftest import BENCH_INSTRUCTIONS, print_table

from repro.cpu import CoreParams, MachineConfig

BENCHES = ("gzip", "gcc", "crafty", "bzip2", "twolf", "swim", "mgrid")


def test_penalty_decomposition(benchmark, ipc_cache):
    base_core = CoreParams()
    long_core = dataclasses.replace(base_core, mispredict_penalty=17)
    short_core = dataclasses.replace(base_core, mispredict_penalty=13)

    rows = []
    for name in BENCHES:
        base = ipc_cache.get_or_run(
            name, MachineConfig(core=base_core, rescue=False),
            n_instructions=BENCH_INSTRUCTIONS,
        )
        # Baseline queue, Rescue's frontend penalty (15 + 2).
        mispredict_only = ipc_cache.get_or_run(
            name, MachineConfig(core=long_core, rescue=False),
            n_instructions=BENCH_INSTRUCTIONS,
        )
        # Rescue queue, baseline's frontend penalty (13 + 2 = 15).
        policy_only = ipc_cache.get_or_run(
            name, MachineConfig(core=short_core, rescue=True),
            n_instructions=BENCH_INSTRUCTIONS,
        )
        full = ipc_cache.get_or_run(
            name, MachineConfig(core=base_core, rescue=True),
            n_instructions=BENCH_INSTRUCTIONS,
        )

        def pct(x):
            return 100 * (1 - x / base) if base else 0.0

        rows.append((
            name, f"{base:.3f}", f"{pct(mispredict_only):+.1f}%",
            f"{pct(policy_only):+.1f}%", f"{pct(full):+.1f}%",
        ))
    print_table(
        "Ablation: Rescue IPC cost split "
        "(+2 mispredict vs ICI issue policy vs both)",
        ("benchmark", "base IPC", "mispredict only", "policy only", "full"),
        rows,
    )

    benchmark(
        lambda: ipc_cache.get_or_run(
            "gzip", MachineConfig(core=short_core, rescue=True),
            n_instructions=BENCH_INSTRUCTIONS,
        )
    )
