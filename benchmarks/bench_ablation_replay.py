"""Ablation — replay policy (DESIGN.md §5.2).

The paper replays *all* instructions of the half that selected fewer,
"for simplicity".  The 'trim' comparator drops only the youngest excess
selections — an oracle that would require exactly the intra-cycle
cross-half communication ICI forbids.  The gap between the two bounds what
the simple policy costs.
"""

from conftest import BENCH_INSTRUCTIONS, print_table

from repro.cpu import MachineConfig

BENCHES = ("gzip", "crafty", "eon", "bzip2", "vortex")


def test_replay_policy_ablation(benchmark, ipc_cache):
    rows = []
    costs = []
    for name in BENCHES:
        paper = ipc_cache.get_or_run(
            name, MachineConfig(rescue=True, replay_policy="paper"),
            n_instructions=BENCH_INSTRUCTIONS,
        )
        trim = ipc_cache.get_or_run(
            name, MachineConfig(rescue=True, replay_policy="trim"),
            n_instructions=BENCH_INSTRUCTIONS,
        )
        cost = 100 * (1 - paper / trim) if trim else 0.0
        costs.append(cost)
        rows.append((name, f"{paper:.3f}", f"{trim:.3f}", f"{cost:+.1f}%"))
    print_table(
        "Ablation: replay-whole-half (paper) vs trim-youngest (oracle)",
        ("benchmark", "paper IPC", "oracle IPC", "policy cost"),
        rows,
    )
    # The simple policy must not be disastrous — the paper relies on
    # replays being rare.
    assert max(costs) < 8.0

    benchmark(
        lambda: ipc_cache.get_or_run(
            "eon", MachineConfig(rescue=True, replay_policy="trim"),
            n_instructions=BENCH_INSTRUCTIONS,
        )
    )
