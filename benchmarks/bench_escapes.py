"""Shipped-quality analysis: ATPG coverage → defective parts per million.

Connects the testability results to shipped quality via the
Williams-Brown model: Rescue's salvage flow only sees the faults the
vectors detect, so the achieved coverage (Table 3) bounds the defect
level of shipped (full or degraded) parts at each technology node.
"""

from conftest import cache_json, print_table

from repro.yieldmodel import AreaModel, FaultDensityModel
from repro.yieldmodel.escapes import EscapeModel


def test_escape_levels(benchmark):
    table3 = cache_json("table3")
    coverage = (
        table3["rescue"]["coverage_pct"] / 100 if table3 else 0.99
    )
    density = FaultDensityModel(stagnation_node_nm=90)
    areas = AreaModel(growth=0.3)
    rows = []
    for node in (90, 65, 32, 18):
        m = EscapeModel(
            area_mm2=areas.rescue_core_area(node),
            density=density.density(node),
            coverage=coverage,
        )
        rows.append((
            f"{node}nm", f"{m.true_yield:.3f}", f"{coverage:.2%}",
            f"{m.dppm:,.0f}",
        ))
    print_table(
        "Test escapes: defect level of shipped cores (Williams-Brown)",
        ("node", "true yield", "fault coverage", "DPPM"),
        rows,
    )
    # Escapes grow as yield falls with scaling.
    dppms = [float(r[3].replace(",", "")) for r in rows]
    assert dppms == sorted(dppms)

    benchmark(
        lambda: EscapeModel(
            area_mm2=areas.rescue_core_area(18),
            density=density.density(18),
            coverage=coverage,
        ).dppm
    )
