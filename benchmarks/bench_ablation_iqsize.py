"""Ablation — issue-queue size sensitivity (DESIGN.md §5.4).

The Figure 9 YAT gap between Rescue and core sparing hinges on degraded
configurations keeping most of their throughput; a halved issue queue is
the most common degradation.  This sweep measures per-benchmark IPC with
a halved integer queue so the cheap-degradation claim is visible directly.
"""

from conftest import BENCH_INSTRUCTIONS, print_table

from repro.cpu import MachineConfig

BENCHES = ("gzip", "gcc", "mcf", "crafty", "bzip2", "swim", "art", "apsi")


def test_iq_size_sensitivity(benchmark, ipc_cache):
    rows = []
    losses = []
    for name in BENCHES:
        full = ipc_cache.get_or_run(
            name, MachineConfig(rescue=True),
            n_instructions=BENCH_INSTRUCTIONS,
        )
        half = ipc_cache.get_or_run(
            name, MachineConfig(rescue=True, iq_int_halves=1),
            n_instructions=BENCH_INSTRUCTIONS,
        )
        loss = 100 * (1 - half / full) if full else 0.0
        losses.append(loss)
        rows.append((name, f"{full:.3f}", f"{half:.3f}", f"{loss:+.1f}%"))
    avg = sum(losses) / len(losses)
    rows.append(("average", "", "", f"{avg:+.1f}%"))
    print_table(
        "Ablation: IPC with a halved integer issue queue",
        ("benchmark", "full IQ", "half IQ", "loss"),
        rows,
    )
    # Losing half the queue must cost far less than losing half the
    # machine — the asymmetry behind Rescue's YAT advantage.
    assert avg < 25.0

    benchmark(
        lambda: ipc_cache.get_or_run(
            "bzip2", MachineConfig(rescue=True, iq_int_halves=1),
            n_instructions=BENCH_INSTRUCTIONS,
        )
    )
