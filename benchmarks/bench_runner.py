"""Parallel-runner benchmark — serial vs N-worker isolation campaign.

Times the Section 6.1 random-fault isolation campaign on the Rescue core
through ``repro.runner`` at 1 worker (in-process, no pool) and at
``--workers`` processes, asserting first that the two produce
bit-identical ``IsolationStats``.  The test setup (netlist + ATPG
vectors + fault sample) is prepared once in the parent before timing, so
the measurement covers the campaign itself; under the POSIX ``fork``
start method the workers inherit the setup copy-free.

Results land in ``BENCH_runner.json`` at the repo root, including
``host_cpus``: the speedup is bounded by physical cores, and a 1-core
container can only demonstrate equivalence and overhead, not speedup —
the JSON records which situation produced the numbers.

Command line:

```
python benchmarks/bench_runner.py                 # measure + write JSON
python benchmarks/bench_runner.py --check         # quick equivalence gate
python benchmarks/bench_runner.py --workers 8
python benchmarks/bench_runner.py --faults 2000
```

``--check`` runs a small campaign serial and parallel, asserts the
merged stats are identical, and exits nonzero on mismatch without
touching the JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if "repro" not in sys.modules:  # script mode: make src/ importable
    sys.path.insert(0, str(_REPO_ROOT / "src"))

RESULT_PATH = _REPO_ROOT / "BENCH_runner.json"


def _peak_rss_kb() -> int:
    """Peak resident set of this process and its workers, in KiB."""
    import resource

    return max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )


def _run(spec, workers: int):
    from repro.runner import run_isolation

    t0 = time.perf_counter()
    stats = run_isolation(spec, workers=workers, checkpoint=False)
    return stats, time.perf_counter() - t0


def measure(n_faults: int = 6000, workers: int = 4, seed: int = 1,
            tiny: bool = False) -> dict:
    """Time the campaign serial and parallel; verify bit-identity.

    Defaults to the paper's full 6000-fault count on the full-size
    Rescue model (random-pattern vectors; PODEM would only lengthen the
    one-time setup excluded from the timing).
    """
    from repro.runner import IsolationSpec, prepare_isolation

    spec = IsolationSpec(
        tiny=tiny,
        n_faults=n_faults,
        fault_seed=seed,
        max_deterministic=0,
        chunk_size=max(1, n_faults // (workers * 8)),
    )
    prepare_isolation(spec)  # exclude netlist/ATPG build from the timing

    serial_stats, serial_s = _run(spec, workers=1)
    parallel_stats, parallel_s = _run(spec, workers=workers)
    if serial_stats != parallel_stats:
        raise AssertionError(
            "parallel IsolationStats differ from serial: "
            f"{parallel_stats} vs {serial_stats}"
        )

    host_cpus = os.cpu_count() or 1
    # On a single-core host a parallel run can only measure pool
    # overhead, never scaling — publishing a sub-1x "speedup" from such
    # a box would misrepresent the runner.  Record equivalence only;
    # a multi-core host re-records the scaling numbers automatically.
    single_core = host_cpus <= 1
    return {
        "campaign": (
            "isolation (Rescue core, "
            f"{'tiny' if tiny else 'full'} params, random vectors)"
        ),
        "n_faults": serial_stats.inserted,
        "chunk_size": spec.chunk_size,
        "workers": workers,
        "host_cpus": host_cpus,
        "mode": "equivalence-only" if single_core else "scaling",
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": (
            None
            if single_core
            else (round(serial_s / parallel_s, 2) if parallel_s else None)
        ),
        "agreement": "bit-exact",
        "peak_rss_kb": _peak_rss_kb(),
        "note": (
            "single-core host: the parallel run demonstrates bit-exact "
            "merge equivalence and bounds pool overhead; speedup is not "
            "meaningful and is recorded as null"
            if single_core
            else "speedup is bounded by host_cpus"
        ),
    }


def check(workers: int = 4) -> None:
    """Quick serial-vs-parallel equivalence gate (no JSON output)."""
    from repro.runner import IsolationSpec, prepare_isolation

    spec = IsolationSpec(
        tiny=True, n_faults=120, max_deterministic=0, chunk_size=17
    )
    prepare_isolation(spec)
    serial_stats, _ = _run(spec, workers=1)
    parallel_stats, _ = _run(spec, workers=workers)
    assert serial_stats == parallel_stats, (
        f"parallel != serial: {parallel_stats} vs {serial_stats}"
    )
    assert serial_stats.inserted == 120
    print(
        f"runner check OK: {workers}-worker campaign bit-identical to "
        f"serial ({serial_stats.summary()})"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="equivalence smoke test, no JSON written")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--faults", type=int, default=6000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--tiny", action="store_true",
                        help="small model (quick look, not the record)")
    args = parser.parse_args(argv)

    if args.check:
        check(workers=args.workers)
        return 0

    result = measure(
        n_faults=args.faults, workers=args.workers, seed=args.seed,
        tiny=args.tiny,
    )
    RESULT_PATH.write_text(json.dumps(result, indent=1) + "\n")
    print(json.dumps(result, indent=1))
    print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
