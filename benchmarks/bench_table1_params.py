"""Table 1 — system parameters.

Prints the baseline machine configuration (the paper's Table 1) and
benchmarks the simulator's raw cycle throughput on it, so regressions in
the core model's speed show up here.
"""

from conftest import print_table

from repro.cpu import Core, MachineConfig
from repro.cpu.isa import Instr, OpClass


def test_table1_parameters(benchmark):
    cfg = MachineConfig()
    core = cfg.core
    rows = [
        ("issue width", core.width),
        ("ROB (active list)", core.rob_size),
        ("int issue queue", core.iq_int_size),
        ("fp issue queue", core.iq_fp_size),
        ("load/store queue", core.lsq_size),
        ("memory ports", core.mem_ports),
        ("int ALUs / muls", f"{core.int_alus} / {core.int_muls}"),
        ("fp adds / muls", f"{core.fp_adds} / {core.fp_muls}"),
        ("branch predictor", "8KB hybrid (bimodal+gshare+chooser)"),
        ("BTB", f"{core.btb_entries} entries, {core.btb_assoc}-way"),
        ("mispredict penalty", f"{core.mispredict_penalty} cycles"),
        ("L1 D-cache",
         f"{core.l1d_kb}KB {core.l1d_assoc}-way {core.l1d_block}B "
         f"{core.l1d_latency}cyc"),
        ("L2 cache",
         f"{core.l2_kb}KB {core.l2_assoc}-way {core.l2_block}B "
         f"{core.l2_latency}cyc"),
        ("memory latency", f"{core.mem_latency} cycles"),
    ]
    print_table("Table 1: system parameters", ("parameter", "value"), rows)

    def simulate_slice():
        trace = [
            Instr(seq=i, op=OpClass.IALU, pc=0x1000 + 4 * i, deps=(2,))
            for i in range(2_000)
        ]
        return Core(cfg, iter(trace)).run(2_000).cycles

    cycles = benchmark(simulate_slice)
    assert cycles > 0
