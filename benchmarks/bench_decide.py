"""Decision-support benchmark — Pareto determinism + masking-fold gate.

Runs the ``decide`` campaign (injection phase + composed IPC sweep +
Pareto fold over all 64 map-out configurations) and records the ranked
front, the knee point, and the per-phase wall clock.  The CI gate
(``--check``) asserts the subsystem's two headline properties:

1. **Worker-count invariance** — the Pareto front and the total ranking
   are bit-identical between serial and multi-worker execution, across
   different chunkings of both measurement phases, and across a
   checkpoint/resume cycle.
2. **Zero mapped-out SDC** — for every configuration on the Pareto
   front, the blocks it maps out contribute exactly ``0.0`` to its
   residual-SDC score (the PR-5 masking property carried through the
   decision fold), and the fold conserves the measured SDC mass.

Results land in ``BENCH_decide.json`` at the repo root.

Command line:

```
python benchmarks/bench_decide.py                 # measure + write JSON
python benchmarks/bench_decide.py --check         # CI gate, no JSON
python benchmarks/bench_decide.py --faults 96 --workers 4
```
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if "repro" not in sys.modules:  # script mode: make src/ importable
    sys.path.insert(0, str(_REPO_ROOT / "src"))

RESULT_PATH = _REPO_ROOT / "BENCH_decide.json"


def _assert_invariance(spec, workers: int):
    """Serial, multi-worker, re-chunked, and resumed runs must agree."""
    from dataclasses import replace

    from repro.decide import run_decide

    serial = run_decide(spec, workers=1, checkpoint=False)
    parallel = run_decide(spec, workers=workers, checkpoint=False)
    if serial != parallel:
        raise AssertionError(
            f"{workers}-worker DecideResult differs from serial"
        )
    rechunked = run_decide(
        replace(
            spec,
            chunk_size=spec.chunk_size + 2,
            inject_chunk=max(1, spec.inject_chunk // 2),
        ),
        workers=workers,
        checkpoint=False,
    )
    if rechunked != serial:
        raise AssertionError("re-chunked DecideResult differs from serial")
    with tempfile.TemporaryDirectory() as cache:
        fresh = run_decide(spec, workers=workers, cache_root=cache)
        resumed = run_decide(
            spec, workers=1, cache_root=cache, resume=True
        )
    if fresh != resumed or fresh != serial:
        raise AssertionError("checkpoint/resume changed the ranking")
    return serial


def _assert_front_masking(result) -> None:
    """Every front member's mapped-out blocks contribute zero SDC, and
    the fold conserves the measured SDC mass."""
    from repro.decide import masked_sdc, sdc_contributions
    from repro.decide.campaign import key_label
    from repro.inject import InjectionStats, mapped_out_blocks
    from repro.yieldmodel.configs import CoreCounts, DIMENSIONS

    stats = InjectionStats()
    stats.by_block = {
        blk: dict(counts) for blk, counts in result.block_sdc.items()
    }
    stats.outcomes = {
        k: sum(c.get(k, 0) for c in stats.by_block.values())
        for k in ("masked", "sdc", "detected", "hang")
    }
    if stats.n != result.n_injections:
        raise AssertionError(
            f"block counts sum to {stats.n}, campaign ran "
            f"{result.n_injections} injections"
        )
    total_sdc = stats.rate("sdc")
    for key in result.front:
        counts = CoreCounts(**dict(zip(DIMENSIONS, key)))
        contrib = sdc_contributions(stats, counts)
        shadow = set(mapped_out_blocks(counts))
        leaked = {
            blk: v for blk, v in contrib.items()
            if blk in shadow and v != 0.0
        }
        if leaked:
            raise AssertionError(
                f"front config {key_label(key)} keeps SDC mass in "
                f"mapped-out blocks: {leaked}"
            )
        score = result.objectives[key].sdc
        if abs(score + masked_sdc(stats, counts) - total_sdc) > 1e-12:
            raise AssertionError(
                f"SDC mass not conserved for {key_label(key)}: "
                f"residual {score} + masked "
                f"{masked_sdc(stats, counts)} != {total_sdc}"
            )


def _ranked_rows(result, top: int) -> list:
    from repro.decide.campaign import key_label

    front = set(result.fronts[0]) if result.fronts else set()
    rows = []
    for rank_i, key in enumerate(result.ranking[:top]):
        s = result.objectives[key]
        rows.append(
            {
                "rank": rank_i,
                "config": key_label(key),
                "yat": round(s.yat, 6),
                "ipc_ratio": round(s.ipc_ratio, 6),
                "sdc": round(s.sdc, 6),
                "area_saved": round(s.area_saved, 6),
                "front": key in front,
                "knee": key == result.knee,
            }
        )
    return rows


def measure(n_faults: int = 96, workers: int = 4, seed: int = 0,
            n_instructions: int = 2000) -> dict:
    """Run the decision campaign and record the ranked front."""
    from repro.decide import DecideSpec
    from repro.decide.campaign import key_label

    spec = DecideSpec(
        benchmarks=("gzip", "mcf"),
        n_instructions=n_instructions,
        warmup=n_instructions // 2,
        n_faults=n_faults,
        inject_seed=seed,
        inject_chunk=max(1, n_faults // (workers * 4)),
    )
    t0 = time.perf_counter()
    result = _assert_invariance(spec, workers)
    seconds = time.perf_counter() - t0
    _assert_front_masking(result)

    host_cpus = os.cpu_count() or 1
    return {
        "campaign": (
            "decide: Pareto ranking of all 64 map-out configurations "
            "(YAT contribution, IPC ratio, residual SDC, area saved)"
        ),
        "benchmarks": list(spec.benchmarks),
        "n_instructions": spec.n_instructions,
        "n_faults": n_faults,
        "workers": workers,
        "host_cpus": host_cpus,
        "seconds_all_runs": round(seconds, 4),
        "n_configs": len(result.ranking),
        "front_size": len(result.front),
        "n_fronts": len(result.fronts),
        "knee": key_label(result.knee),
        "first_map_out": key_label(result.first_map_out()),
        "full_core_sdc_rate": round(
            result.objectives[(2,) * 6].sdc, 6
        ),
        "ranked_top": _ranked_rows(result, top=10),
        "agreement": (
            "bit-exact across workers/chunking/resume; mapped-out "
            "blocks contribute zero SDC on every front member"
        ),
    }


def check(workers: int = 2) -> None:
    """CI gate: Pareto determinism + masking fold on a small campaign."""
    from repro.decide import DecideSpec

    spec = DecideSpec(
        benchmarks=("gzip",),
        n_instructions=800,
        warmup=400,
        inject_instructions=600,
        n_faults=16,
        inject_chunk=4,
        chunk_size=2,
    )
    result = _assert_invariance(spec, workers)
    _assert_front_masking(result)
    print(
        "decide check OK: "
        f"{len(result.ranking)} configs ranked, "
        f"front {len(result.front)}, knee "
        f"{''.join(str(v) for v in result.knee)}, "
        f"{workers}-worker/re-chunked/resume runs bit-identical to "
        f"serial, zero mapped-out SDC on every front member"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="determinism/masking gate, no JSON written")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--faults", type=int, default=96,
                        help="injections on the full core")
    parser.add_argument("--instructions", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.check:
        check(workers=min(args.workers, 2))
        return 0

    result = measure(
        n_faults=args.faults, workers=args.workers, seed=args.seed,
        n_instructions=args.instructions,
    )
    RESULT_PATH.write_text(json.dumps(result, indent=1) + "\n")
    print(json.dumps(result, indent=1))
    print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
