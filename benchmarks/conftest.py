"""Shared infrastructure for the experiment-regeneration benchmarks.

Each ``bench_*.py`` file regenerates one of the paper's tables or figures
(see DESIGN.md's per-experiment index).  Heavy results are cached under
``.repro_cache`` so repeated runs are fast; delete that directory (or set
``REPRO_CACHE_DIR``) to force recomputation.

Environment knobs:

- ``RESCUE_BENCH_INSTRUCTIONS`` — measured instructions per simulation
  (default 40000),
- ``RESCUE_BENCH_WARMUP`` — cache/predictor warmup instructions
  (default 12000),
- ``RESCUE_FULL`` — set to 1 to simulate all 64 degraded configurations
  instead of composing multi-degradation IPCs from the single-degradation
  ratios,
- ``RESCUE_FAULTS`` — faults inserted in the isolation experiment
  (default 600; the paper's full experiment used 6000).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest


def env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


BENCH_INSTRUCTIONS = env_int("RESCUE_BENCH_INSTRUCTIONS", 40_000)
BENCH_WARMUP = env_int("RESCUE_BENCH_WARMUP", 12_000)
FULL_SWEEP = os.environ.get("RESCUE_FULL", "") not in ("", "0")
N_FAULTS = env_int("RESCUE_FAULTS", 600)

def _cache_dir() -> Path:
    # Unified cache root: REPRO_CACHE_DIR, with the pre-unification
    # RESCUE_CACHE_DIR honoured as a deprecated fallback.
    root = os.environ.get("REPRO_CACHE_DIR")
    if root is None:
        root = os.environ.get("RESCUE_CACHE_DIR")
    return Path(root if root is not None else ".repro_cache")


CACHE_DIR = _cache_dir()


def cache_json(name: str):
    """Load a cached JSON blob by name, or None."""
    path = CACHE_DIR / f"{name}.json"
    if path.exists():
        try:
            return json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return None
    return None


def save_json(name: str, payload) -> None:
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    (CACHE_DIR / f"{name}.json").write_text(json.dumps(payload, indent=1))


def print_table(title: str, headers, rows) -> None:
    """Fixed-width table printer for the paper-style outputs."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


@pytest.fixture(scope="session")
def ipc_cache():
    from repro.cpu.degraded import IpcCache

    return IpcCache(CACHE_DIR / "ipc_cache.json")
