"""Ablation — compaction buffer size (DESIGN.md §5.1).

The paper fixes the temporary compaction latch at four entries per queue.
This sweep varies it (2/4/8) on the issue-pressure benchmarks to show the
choice is not critical — the buffer only bounds how fast the old half
refills, which back-to-back selection in the new half mostly hides.
"""

from conftest import BENCH_INSTRUCTIONS, print_table

from repro.cpu import MachineConfig

BENCHES = ("gzip", "crafty", "eon", "bzip2")
SIZES = (2, 4, 8)


def test_compaction_buffer_sweep(benchmark, ipc_cache):
    rows = []
    spreads = []
    for name in BENCHES:
        ipcs = []
        for size in SIZES:
            cfg = MachineConfig(rescue=True, compaction_buffer=size)
            ipcs.append(
                ipc_cache.get_or_run(
                    name, cfg, n_instructions=BENCH_INSTRUCTIONS
                )
            )
        spread = 100 * (max(ipcs) - min(ipcs)) / max(ipcs)
        spreads.append(spread)
        rows.append(
            (name, *(f"{v:.3f}" for v in ipcs), f"{spread:.1f}%")
        )
    print_table(
        "Ablation: compaction buffer size (IPC)",
        ("benchmark", *(f"{s} entries" for s in SIZES), "spread"),
        rows,
    )
    # The paper's 4-entry choice should be robust: small spread.
    assert max(spreads) < 10.0

    cfg = MachineConfig(rescue=True, compaction_buffer=4)
    benchmark(
        lambda: ipc_cache.get_or_run(
            "gzip", cfg, n_instructions=BENCH_INSTRUCTIONS
        )
    )
