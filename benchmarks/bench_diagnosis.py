"""Diagnosis comparison — what ICI's single lookup replaces (Section 2).

For faults detected in the *baseline* (non-ICI) pipeline, classical
cone-intersection diagnosis produces a candidate set of gates spanning
several components; the same failures in the Rescue pipeline resolve to
one map-out block by a table lookup.  This benchmark measures the
candidate-set sizes on both designs.

Per-fault failing bits come from :meth:`ScanTester.failing_bits` on the
bit-packed ``"word"`` backend, so the per-design loop over ``N_FAULTS``
random faults is fault-simulation-bound no longer — cone intersection
itself dominates.
"""

import random

from conftest import cache_json, print_table, save_json

from repro.atpg.diagnosis import ConeDiagnoser
from repro.atpg.faults import component_of_fault, full_fault_universe
from repro.rtl import RtlParams, build_baseline_rtl, build_rescue_rtl
from repro.rtl.experiment import generate_tests

_CACHE = "diagnosis"
N_FAULTS = 120


def _diagnose_design(builder, seed: int):
    model = builder(RtlParams.tiny())
    setup = generate_tests(model, seed=0, max_deterministic=0)
    diagnoser = ConeDiagnoser(model.netlist)
    rng = random.Random(seed)
    q_nets = {f.q_net for f in model.netlist.flops}
    faults = [
        f for f in full_fault_universe(model.netlist)
        if component_of_fault(model.netlist, f)
        and not (f.is_stem and f.net in q_nets)
    ]
    gate_counts = []
    comp_counts = []
    resolved = 0
    tried = 0
    while tried < N_FAULTS:
        fault = rng.choice(faults)
        bits, pos = setup.tester.failing_bits(setup.atpg.patterns, fault)
        if not bits and not pos:
            continue
        tried += 1
        failing_flops = [setup.chain.flop_at(b) for b in bits]
        result = diagnoser.diagnose(failing_flops, pos)
        gate_counts.append(len(result.candidate_gates))
        comp_counts.append(len(result.candidate_components))
        resolved += int(result.resolved)
    return {
        "mean_gates": sum(gate_counts) / len(gate_counts),
        "max_gates": max(gate_counts),
        "mean_components": sum(comp_counts) / len(comp_counts),
        "resolved_pct": 100 * resolved / tried,
    }


def _compute():
    cached = cache_json(_CACHE)
    if cached is not None:
        return cached
    out = {
        "base": _diagnose_design(build_baseline_rtl, seed=5),
        "rescue": _diagnose_design(build_rescue_rtl, seed=5),
    }
    save_json(_CACHE, out)
    return out


def test_diagnosis_vs_ici(benchmark):
    data = _compute()
    rows = [
        (
            name,
            f"{d['mean_gates']:.0f}",
            d["max_gates"],
            f"{d['mean_components']:.2f}",
            f"{d['resolved_pct']:.0f}%",
        )
        for name, d in data.items()
    ]
    print_table(
        "Cone diagnosis: candidate sets per detected fault "
        "(ICI needs one table lookup instead)",
        ("design", "mean candidate gates", "max", "mean components",
         "single-component"),
        rows,
    )
    # ICI narrows diagnosis: the Rescue design resolves to a single
    # component far more often than the baseline.
    assert (
        data["rescue"]["resolved_pct"] > data["base"]["resolved_pct"]
    )

    model = build_rescue_rtl(RtlParams.tiny())
    diagnoser = ConeDiagnoser(model.netlist)
    flop = model.netlist.flops[len(model.netlist.flops) // 2]
    benchmark(lambda: diagnoser.diagnose([flop.fid]))
