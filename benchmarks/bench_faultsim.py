"""Fault-simulation engine benchmark — fault-pattern evaluations/sec.

Grades the full collapsed fault universe of the Rescue core netlist
against a random pattern set with both engines:

- ``word``   — :class:`repro.netlist.compiled.PackedWordSimulator`
  (levelized structure-of-arrays, 64 bit-packed patterns per uint64 word,
  event-driven cone re-simulation),
- ``legacy`` — :class:`repro.netlist.simulate.PackedSimulator`
  (dict of per-net numpy bool arrays; the reference).

Throughput is ``faults x patterns / seconds``.  Results (and the
word/legacy speedup) are written to ``BENCH_faultsim.json`` at the repo
root — the repo's perf trajectory record; equivalence between backends
is asserted bit-for-bit before any number is reported.

Command line:

```
python benchmarks/bench_faultsim.py           # measure + write JSON
python benchmarks/bench_faultsim.py --check   # <30 s equivalence smoke
python benchmarks/bench_faultsim.py --full    # paper-scale RtlParams()
python benchmarks/bench_faultsim.py --patterns 1024
```

``--check`` is the pre-merge perf gate (see benchmarks/README.md): it
asserts backend equivalence (detection verdicts + first-detection
indices + captured responses) on a small netlist and exits nonzero on
any mismatch, without touching the JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parents[1]
if "repro" not in sys.modules:  # script mode: make src/ importable
    sys.path.insert(0, str(_REPO_ROOT / "src"))

RESULT_PATH = _REPO_ROOT / "BENCH_faultsim.json"


def _build_netlist(full: bool):
    from repro.rtl import RtlParams, build_rescue_rtl
    from repro.scan import insert_scan

    params = RtlParams() if full else RtlParams.tiny()
    model = build_rescue_rtl(params)
    insert_scan(model.netlist)
    return model.netlist


def _fault_list(netlist):
    from repro.atpg.collapse import collapse_faults
    from repro.atpg.faults import full_fault_universe

    return collapse_faults(netlist, full_fault_universe(netlist))


def _assert_equivalent(grade_a, grade_b, label: str) -> None:
    if grade_a.detected != grade_b.detected:
        raise AssertionError(f"{label}: detection maps differ")
    if grade_a.undetected != grade_b.undetected:
        raise AssertionError(f"{label}: undetected lists differ")


def measure(
    full: bool = False, n_patterns: int = 512, seed: int = 0
) -> dict:
    """Time both backends on the Rescue core netlist; verify agreement."""
    from repro.atpg.faultsim import grade_faults
    from repro.netlist.compiled import make_simulator

    netlist = _build_netlist(full)
    faults = _fault_list(netlist)
    rng = np.random.default_rng(seed)
    sims = {name: make_simulator(netlist, name) for name in ("legacy",
                                                             "word")}
    patterns = rng.integers(
        0, 2, size=(n_patterns, sims["word"].n_sources)
    ).astype(bool)

    # Captured responses must agree bit-for-bit before timing means
    # anything.
    po = {}
    state = {}
    for name, sim in sims.items():
        values = sim.good_values(patterns)
        po[name], state[name] = sim.capture(values)
    assert (po["legacy"] == po["word"]).all(), "PO capture differs"
    assert (state["legacy"] == state["word"]).all(), "state capture differs"

    grades = {}
    timings = {}
    for name, sim in sims.items():
        t0 = time.perf_counter()
        grades[name] = grade_faults(netlist, faults, patterns, sim=sim)
        timings[name] = time.perf_counter() - t0
    _assert_equivalent(grades["legacy"], grades["word"], "measure")

    evals = len(faults) * n_patterns
    backends = {
        name: {
            "grade_seconds": round(timings[name], 4),
            "evals_per_sec": round(evals / timings[name]),
        }
        for name in sims
    }
    return {
        "netlist": netlist.stats(),
        "params": "full" if full else "tiny",
        "n_faults": len(faults),
        "n_patterns": n_patterns,
        "fault_pattern_evals": evals,
        "coverage": round(grades["word"].coverage, 4),
        "backends": backends,
        "speedup_word_over_legacy": round(
            timings["legacy"] / timings["word"], 2
        ),
        "agreement": "bit-exact",
    }


def check(seed: int = 0) -> None:
    """Pre-merge smoke gate: backend equivalence on a small netlist.

    Covers grading (verdicts + first-detection indices), per-pattern
    detection vectors, and faulty captured responses for every collapsed
    fault, at a pattern count that straddles the word boundary.  Runs in
    well under 30 s.
    """
    from repro.atpg.compaction import detection_matrix
    from repro.atpg.faultsim import grade_faults
    from repro.netlist.compiled import make_simulator

    netlist = _build_netlist(full=False)
    faults = _fault_list(netlist)
    rng = np.random.default_rng(seed)
    word = make_simulator(netlist, "word")
    legacy = make_simulator(netlist, "legacy")
    patterns = rng.integers(0, 2, size=(96, word.n_sources)).astype(bool)

    g_word = grade_faults(netlist, faults, patterns, sim=word)
    g_legacy = grade_faults(netlist, faults, patterns, sim=legacy)
    _assert_equivalent(g_legacy, g_word, "check")

    sample = faults[:: max(1, len(faults) // 200)]
    m_word = detection_matrix(netlist, sample, patterns, sim=word)
    m_legacy = detection_matrix(netlist, sample, patterns, sim=legacy)
    for fault in sample:
        assert (m_word[fault] == m_legacy[fault]).all(), (
            f"detection vector differs for {fault.describe()}"
        )
    lv = legacy.good_values(patterns)
    wv = word.good_values(patterns)
    for fault in sample[:60]:
        dl = legacy.faulty_values(lv, fault)
        dw = word.faulty_values(wv, fault)
        po_l, st_l = legacy.capture(lv, fault=fault, delta=dl)
        po_w, st_w = word.capture(wv, fault=fault, delta=dw)
        assert (po_l == po_w).all() and (st_l == st_w).all(), (
            f"faulty capture differs for {fault.describe()}"
        )
    print(
        f"check OK: {len(faults)} faults x {patterns.shape[0]} patterns, "
        f"{len(sample)} detection vectors and {min(60, len(sample))} "
        f"faulty captures bit-exact across backends"
    )


def _print_result(data: dict) -> None:
    print(f"\n=== Fault-simulation engines: {data['params']} Rescue core "
          f"({data['netlist']['gates']} gates, "
          f"{data['netlist']['flops']} flops) ===")
    print(f"{data['n_faults']} faults x {data['n_patterns']} patterns "
          f"({data['fault_pattern_evals']} fault-pattern evals), "
          f"coverage {100 * data['coverage']:.1f}%")
    for name, row in data["backends"].items():
        print(f"  {name:>7}: {row['grade_seconds']:8.3f} s   "
              f"{row['evals_per_sec']:>12,} evals/s")
    print(f"  speedup: {data['speedup_word_over_legacy']}x "
          f"(agreement: {data['agreement']})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check", action="store_true",
        help="equivalence smoke gate only (no JSON written)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="use the paper-scale RtlParams() netlist",
    )
    parser.add_argument("--patterns", type=int, default=512)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.check:
        check(seed=args.seed)
        return 0
    data = measure(
        full=args.full, n_patterns=args.patterns, seed=args.seed
    )
    _print_result(data)
    RESULT_PATH.write_text(json.dumps(data, indent=1) + "\n")
    print(f"wrote {RESULT_PATH}")
    return 0


# ----------------------------------------------------------------------
# pytest entry point (pre-merge gate; cheap equivalence + kernel timing)
# ----------------------------------------------------------------------
def test_faultsim_backend_equivalence(benchmark):
    check()

    from repro.atpg.faultsim import grade_faults
    from repro.netlist.compiled import make_simulator

    netlist = _build_netlist(full=False)
    faults = _fault_list(netlist)[:500]
    sim = make_simulator(netlist, "word")
    rng = np.random.default_rng(0)
    patterns = rng.integers(0, 2, size=(512, sim.n_sources)).astype(bool)
    benchmark(lambda: grade_faults(netlist, faults, patterns, sim=sim))


if __name__ == "__main__":
    sys.exit(main())
