"""ATPG flow benchmark — end-to-end `run_atpg` vectors/sec per backend.

Runs the Table-3 scan workload (tiny Rescue core, full-scan, collapsed
stuck-at universe) end to end with both engine pairs:

- ``word``   — bit-packed fault simulation + compiled event-driven PODEM
  (:class:`repro.atpg.podem_compiled.CompiledPodem`: undo trail, SCOAP
  guidance, X-path pruning) with batched fault dropping,
- ``legacy`` — the reference :class:`repro.atpg.podem.Podem` (full
  3-valued resimulation per decision) + reference flow bookkeeping.

**Hard-tail exclusion.**  A handful of faults need >10^5 backtracks to
resolve under *any* PODEM (redundancy proofs are exponential in the
worst case), so no finite backtrack budget yields an abort-free run of
the raw universe.  The bench therefore pre-screens the deterministic
phase's targets standalone under *both* engines and excludes any fault
either engine aborts on — a backend-neutral filter, recorded in the JSON
(``n_excluded_hard``).  On the filtered workload every targeted fault
provably resolves, so both backends finish with zero aborts and the
detected/untestable/aborted statistics must be **bit-identical** (PODEM
verdicts are per-fault deterministic; untestable faults are never
collaterally dropped).  That equivalence is asserted before any number
is reported.

Results go to ``BENCH_atpg.json`` at the repo root: per-backend wall
time, vectors/sec, backtracks, and the word/legacy speedup.

Command line:

```
python benchmarks/bench_atpg.py           # measure + write JSON (minutes:
                                          # the legacy run dominates)
python benchmarks/bench_atpg.py --check   # fast equivalence gate (CI)
```

``--check`` asserts legacy/compiled verdict agreement on random circuits
and a sampled slice of the Rescue workload, plus batched-vs-per-pattern
dropping equivalence, and exits nonzero on any mismatch without touching
the JSON.
"""

from __future__ import annotations

import argparse
import json
import random as pyrandom
import sys
import time
from pathlib import Path

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parents[1]
if "repro" not in sys.modules:  # script mode: make src/ importable
    sys.path.insert(0, str(_REPO_ROOT / "src"))

RESULT_PATH = _REPO_ROOT / "BENCH_atpg.json"

BACKTRACK_LIMIT = 512
SEED = 0


def _build_netlist():
    from repro.rtl import RtlParams, build_rescue_rtl
    from repro.scan import insert_scan

    model = build_rescue_rtl(RtlParams.tiny())
    return insert_scan(model.netlist).netlist


def _fault_list(netlist):
    from repro.atpg.collapse import collapse_faults
    from repro.atpg.faults import full_fault_universe

    return collapse_faults(netlist, full_fault_universe(netlist))


def _random_survivors(netlist, faults, seed, batch_size=64,
                      max_random_batches=16):
    """Faults the flow's random phase leaves for PODEM (replicates the
    random phase of :func:`run_atpg` with its default knobs)."""
    from repro.atpg.faultsim import grade_faults
    from repro.netlist.compiled import make_simulator

    sim = make_simulator(netlist, "word")
    rng = np.random.default_rng(seed)
    remaining = list(faults)
    for _ in range(max_random_batches):
        if not remaining:
            break
        batch = rng.integers(
            0, 2, size=(batch_size, sim.n_sources)
        ).astype(bool)
        grade = grade_faults(netlist, remaining, batch, sim=sim)
        if not grade.detected:
            break
        remaining = grade.undetected
    return remaining


def _flow_stats(result):
    return {
        "n_vectors": result.n_vectors,
        "n_detected": result.n_detected,
        "n_untestable": result.n_untestable,
        "n_aborted": result.n_aborted,
        "coverage": round(result.coverage, 6),
    }


def measure(seed: int = SEED,
            backtrack_limit: int = BACKTRACK_LIMIT) -> dict:
    """Time both backends end to end on the Table-3 scan workload."""
    from repro.atpg.flow import run_atpg
    from repro.atpg.faultsim import grade_faults
    from repro.atpg.podem import Podem
    from repro.atpg.podem_compiled import CompiledPodem
    from repro.telemetry import TELEMETRY

    netlist = _build_netlist()
    faults = _fault_list(netlist)
    survivors = _random_survivors(netlist, faults, seed)
    print(f"{len(faults)} collapsed faults, {len(survivors)} survive the "
          f"random phase; screening the hard tail...", flush=True)

    # Backend-neutral hard-tail screen: standalone PODEM per survivor
    # under both engines; exclude faults either engine aborts on.
    screen_times = {}
    aborted = set()
    for name, engine in (
        ("word", CompiledPodem(netlist, backtrack_limit=backtrack_limit)),
        ("legacy", Podem(netlist, backtrack_limit=backtrack_limit)),
    ):
        t0 = time.perf_counter()
        for fault in survivors:
            if engine.generate(fault).status == "aborted":
                aborted.add(fault)
        screen_times[name] = time.perf_counter() - t0
        print(f"  screened with {name} in {screen_times[name]:.1f}s "
              f"({len(aborted)} hard so far)", flush=True)
    bench_faults = [f for f in faults if f not in aborted]

    backends = {}
    results = {}
    for name in ("word", "legacy"):
        TELEMETRY.enable()
        try:
            with TELEMETRY.collect() as metrics:
                t0 = time.perf_counter()
                results[name] = run_atpg(
                    netlist,
                    faults=bench_faults,
                    seed=seed,
                    backtrack_limit=backtrack_limit,
                    backend=name,
                )
                elapsed = time.perf_counter() - t0
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        counters = metrics.counters
        res = results[name]
        backends[name] = {
            "run_seconds": round(elapsed, 2),
            "vectors_per_sec": round(res.n_vectors / elapsed, 2),
            "podem_targets": counters.get("podem.targets", 0),
            "podem_backtracks": counters.get("podem.backtracks", 0),
            "podem_cone_evals": counters.get("podem.cone_evals", 0),
            "podem_xpath_prunes": counters.get("podem.xpath_prunes", 0),
            **_flow_stats(res),
        }
        print(f"  {name}: {elapsed:.1f}s, {res.summary()}", flush=True)

    w, l = results["word"], results["legacy"]
    for field in ("n_detected", "n_untestable", "n_aborted",
                  "n_collapsed_faults"):
        assert getattr(w, field) == getattr(l, field), (
            f"{field} differs: word={getattr(w, field)} "
            f"legacy={getattr(l, field)}"
        )
    assert w.n_aborted == 0, "hard-tail screen missed an aborting fault"
    g_w = grade_faults(netlist, bench_faults, w.patterns)
    g_l = grade_faults(netlist, bench_faults, l.patterns)
    assert set(g_w.detected) == set(g_l.detected), (
        "pattern sets cover different fault sets"
    )

    return {
        "workload": "table3-tiny-rescue-scan",
        "netlist": netlist.stats(),
        "backtrack_limit": backtrack_limit,
        "n_collapsed_faults": len(faults),
        "n_random_survivors": len(survivors),
        "n_excluded_hard": len(aborted),
        "n_bench_faults": len(bench_faults),
        "backends": backends,
        "speedup_word_over_legacy": round(
            backends["legacy"]["run_seconds"]
            / backends["word"]["run_seconds"], 2
        ),
        "agreement": "bit-identical detected/untestable/aborted; "
                     "identical graded detected sets",
    }


def check(seed: int = SEED) -> None:
    """Pre-merge gate: legacy/compiled PODEM equivalence, fast.

    1. Random circuits: per-fault verdicts agree at a no-abort budget,
       every compiled pattern detects its target, and `run_atpg`
       statistics are bit-identical across backends.
    2. Batched (`drop_batch=64`) vs per-pattern (`drop_batch=1`)
       dropping covers the same fault set.
    3. Rescue workload slice: standalone verdicts agree on a fault
       sample wherever neither engine aborts (an abort makes no claim).
    """
    from repro.atpg.collapse import collapse_faults
    from repro.atpg.faults import full_fault_universe
    from repro.atpg.faultsim import grade_faults
    from repro.atpg.flow import run_atpg
    from repro.atpg.podem import Podem
    from repro.atpg.podem_compiled import CompiledPodem
    from repro.netlist import GateType, Netlist
    from repro.netlist.compiled import make_simulator

    kinds = [GateType.AND, GateType.OR, GateType.XOR, GateType.NAND,
             GateType.NOR, GateType.NOT, GateType.MUX2]

    def circuit(cseed, n_inputs=5, n_gates=22):
        rng = pyrandom.Random(cseed)
        nl = Netlist(f"bench{cseed}")
        nets = [nl.add_input(f"i{k}") for k in range(n_inputs)]
        for _ in range(n_gates):
            kind = rng.choice(kinds)
            n_pins = {GateType.NOT: 1, GateType.MUX2: 3}.get(kind, 2)
            nets.append(
                nl.add_gate(kind, [rng.choice(nets) for _ in range(n_pins)])
            )
        nl.mark_output(nets[-1])
        return nl

    n_verdicts = 0
    for cseed in range(8):
        nl = circuit(cseed)
        sim = make_simulator(nl, "word")
        legacy = Podem(nl, backtrack_limit=5_000)
        compiled = CompiledPodem(nl, backtrack_limit=5_000)
        targets = collapse_faults(nl, full_fault_universe(nl))
        for fault in targets:
            r_l = legacy.generate(fault)
            r_c = compiled.generate(fault)
            assert r_l.status == r_c.status, (
                f"seed {cseed} {fault.describe()}: "
                f"legacy={r_l.status} compiled={r_c.status}"
            )
            n_verdicts += 1
            if r_c.status == "detected":
                row = np.zeros((1, sim.n_sources), dtype=bool)
                for net, val in r_c.pattern.items():
                    row[0, sim.source_col[net]] = bool(val)
                assert fault in grade_faults(nl, [fault], row,
                                             sim=sim).detected, (
                    f"seed {cseed}: compiled pattern misses "
                    f"{fault.describe()}"
                )
        res_w = run_atpg(nl, seed=3, backtrack_limit=5_000, backend="word")
        res_l = run_atpg(nl, seed=3, backtrack_limit=5_000,
                         backend="legacy")
        assert _flow_stats(res_w)["n_detected"] == (
            _flow_stats(res_l)["n_detected"]
        )
        assert res_w.n_untestable == res_l.n_untestable
        assert res_w.n_aborted == 0 and res_l.n_aborted == 0
        res_b = run_atpg(nl, seed=3, backtrack_limit=5_000, drop_batch=64)
        res_p = run_atpg(nl, seed=3, backtrack_limit=5_000, drop_batch=1)
        g_b = grade_faults(nl, targets, res_b.patterns)
        g_p = grade_faults(nl, targets, res_p.patterns)
        assert set(g_b.detected) == set(g_p.detected), (
            f"seed {cseed}: batched dropping changed the covered set"
        )

    netlist = _build_netlist()
    faults = _fault_list(netlist)
    sample = faults[:: max(1, len(faults) // 40)]
    legacy = Podem(netlist, backtrack_limit=128)
    compiled = CompiledPodem(netlist, backtrack_limit=128)
    agreed = skipped = 0
    for fault in sample:
        s_l = legacy.generate(fault).status
        s_c = compiled.generate(fault).status
        if "aborted" in (s_l, s_c):
            skipped += 1  # an abort is a non-verdict, not a disagreement
            continue
        assert s_l == s_c, (
            f"Rescue {fault.describe()}: legacy={s_l} compiled={s_c}"
        )
        agreed += 1
    print(
        f"check OK: {n_verdicts} random-circuit verdicts, 8 flow stat "
        f"comparisons and batched-dropping checks, {agreed} Rescue "
        f"verdicts bit-identical across backends ({skipped} abort-"
        f"budget skips)"
    )


def _print_result(data: dict) -> None:
    print(f"\n=== ATPG flow: {data['workload']} "
          f"({data['netlist']['gates']} gates, "
          f"{data['netlist']['flops']} flops) ===")
    print(f"{data['n_bench_faults']} bench faults "
          f"({data['n_excluded_hard']} hard-tail excluded of "
          f"{data['n_collapsed_faults']} collapsed), backtrack limit "
          f"{data['backtrack_limit']}")
    for name, row in data["backends"].items():
        print(f"  {name:>7}: {row['run_seconds']:8.2f} s   "
              f"{row['n_vectors']} vectors "
              f"({row['vectors_per_sec']:.2f}/s), "
              f"{row['podem_backtracks']} backtracks, "
              f"coverage {100 * row['coverage']:.2f}%")
    print(f"  speedup: {data['speedup_word_over_legacy']}x "
          f"({data['agreement']})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check", action="store_true",
        help="equivalence gate only (no JSON written)",
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--backtrack-limit", type=int,
                        default=BACKTRACK_LIMIT)
    args = parser.parse_args(argv)
    if args.check:
        check(seed=args.seed)
        return 0
    data = measure(seed=args.seed, backtrack_limit=args.backtrack_limit)
    _print_result(data)
    RESULT_PATH.write_text(json.dumps(data, indent=1) + "\n")
    print(f"wrote {RESULT_PATH}")
    return 0


# ----------------------------------------------------------------------
# pytest entry point (pre-merge gate; cheap equivalence + kernel timing)
# ----------------------------------------------------------------------
def test_atpg_backend_equivalence(benchmark):
    check()

    from repro.atpg.podem_compiled import CompiledPodem

    netlist = _build_netlist()
    faults = _fault_list(netlist)
    sample = faults[:: max(1, len(faults) // 30)]
    podem = CompiledPodem(netlist, backtrack_limit=64)
    benchmark(lambda: [podem.generate(f) for f in sample])


if __name__ == "__main__":
    sys.exit(main())
