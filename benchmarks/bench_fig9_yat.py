"""Figure 9 — YAT improvement from redundancy.

For both fault-density scenarios (PWP stagnating at 90nm and at 65nm),
four core-growth rates, and the nodes 90/65/32/18nm, computes the average
(over the 23 benchmarks) relative YAT of:

- a chip with no redundancy,
- core sparing (CS),
- Rescue on top of core sparing,

plus the cores-per-chip table under the bars and the Rescue/CS improvement
percentages the paper quotes (+12%/+22% at 32/18nm for the headline
scenario; +25%/+40% at 50% growth; +8%/+14% for 65nm stagnation).

First run simulates 23 benchmarks × (1 baseline + 7 Rescue configurations)
— several minutes; all IPCs are cached.  Set ``RESCUE_FULL=1`` to simulate
all 64 degraded configurations instead of composing.
"""

from conftest import (
    BENCH_INSTRUCTIONS,
    FULL_SWEEP,
    cache_json,
    print_table,
    save_json,
)

from repro.cpu import MachineConfig
from repro.cpu.degraded import rescue_ipc_table
from repro.workloads import PROFILES
from repro.yieldmodel import FaultDensityModel, YatModel, cores_per_chip

NODES = (90, 65, 32, 18)
GROWTHS = (0.2, 0.3, 0.4, 0.5)
_CACHE = f"fig9_{BENCH_INSTRUCTIONS}_{'full' if FULL_SWEEP else 'compose'}"


def _collect_ipcs(ipc_cache):
    """(baseline IPC, Rescue config→IPC table) per benchmark."""
    out = {}
    base_cfg = MachineConfig(rescue=False)
    resc_cfg = MachineConfig(rescue=True)
    for prof in PROFILES:
        base = ipc_cache.get_or_run(
            prof.name, base_cfg, n_instructions=BENCH_INSTRUCTIONS
        )
        table = rescue_ipc_table(
            prof.name, resc_cfg, cache=ipc_cache,
            n_instructions=BENCH_INSTRUCTIONS, compose=not FULL_SWEEP,
        )
        out[prof.name] = (base, table)
    return out


def _grid(ipcs):
    """scenario → growth → node → averaged YatResult triple."""
    grid = {}
    for stag in (90, 65):
        anchor = (90.0, 1) if stag == 90 else (65.0, 2)
        density = FaultDensityModel(stagnation_node_nm=stag)
        for growth in GROWTHS:
            for node in NODES:
                nr = cs = rs = 0.0
                for name, (base_ipc, table) in ipcs.items():
                    model = YatModel(
                        density=density,
                        growth=growth,
                        baseline_ipc=base_ipc,
                        rescue_ipc=table,
                        anchor=anchor,
                    )
                    r = model.evaluate(node)
                    nr += r.no_redundancy
                    cs += r.core_sparing
                    rs += r.rescue
                n = len(ipcs)
                grid[(stag, growth, node)] = (nr / n, cs / n, rs / n)
    return grid


def _compute(ipc_cache):
    cached = cache_json(_CACHE)
    if cached is not None:
        return {
            tuple(map(float, k.split("|"))): v for k, v in cached.items()
        }
    ipcs = _collect_ipcs(ipc_cache)
    grid = _grid(ipcs)
    save_json(
        _CACHE,
        {"|".join(map(str, k)): v for k, v in grid.items()},
    )
    return grid


def test_figure9_yat(benchmark, ipc_cache):
    grid = _compute(ipc_cache)

    for stag in (90, 65):
        rows = []
        for growth in GROWTHS:
            for node in NODES:
                nr, cs, rs = grid[(stag, growth, node)]
                anchor = (90.0, 1) if stag == 90 else (65.0, 2)
                k = cores_per_chip(
                    node, growth, anchor_node_nm=anchor[0],
                    anchor_cores=anchor[1],
                )
                gain = 100 * (rs / cs - 1) if cs else 0.0
                rows.append((
                    f"{int(growth*100)}%", f"{node}nm", k,
                    f"{nr:.3f}", f"{cs:.3f}", f"{rs:.3f}", f"{gain:+.1f}%",
                ))
        print_table(
            f"Figure 9{'a' if stag == 90 else 'b'}: relative YAT, "
            f"PWP stagnating at {stag}nm",
            ("growth", "node", "cores", "no-redundancy", "+core sparing",
             "+Rescue", "Rescue/CS"),
            rows,
        )

    # Shape assertions drawn from Section 6.3.
    def gain(stag, growth, node):
        nr, cs, rs = grid[(stag, growth, node)]
        return rs / cs - 1

    # CS >= no redundancy everywhere; Rescue > CS at the far nodes.
    for key, (nr, cs, rs) in grid.items():
        assert cs >= nr - 1e-9
    assert gain(90, 0.3, 18) > gain(90, 0.3, 32) > 0
    # Larger growth -> larger Rescue advantage.
    assert gain(90, 0.5, 18) > gain(90, 0.2, 18)
    # Later PWP stagnation -> smaller opportunity.
    assert gain(90, 0.3, 18) > gain(65, 0.3, 18)
    # Headline magnitudes in the paper's neighbourhood.
    assert 0.05 < gain(90, 0.3, 18) < 0.6
    assert 0.02 < gain(65, 0.3, 18) < 0.3

    # Benchmark the analytic YAT evaluation (no simulation inside).
    from repro.yieldmodel.yat import flat_rescue_ipc

    model = YatModel(
        density=FaultDensityModel(stagnation_node_nm=90),
        growth=0.3,
        baseline_ipc=2.0,
        rescue_ipc=flat_rescue_ipc(1.95, lambda cfg: 0.9),
    )
    benchmark(lambda: model.evaluate(18))
