"""Table 3 — scan chain data: faults, cells, vectors, test cycles.

Builds the gate-level baseline and Rescue pipelines, runs the full ATPG
flow on both (bit-packed ``"word"`` fault-sim backend), and prints the
paper's Table 3 rows plus the headline ratio (Rescue's fault-isolation
time over the baseline's fault-detection time; the paper reports +13%).

The ATPG runs take a couple of minutes the first time; results are
cached.
"""

import time

from conftest import cache_json, print_table, save_json

from repro.rtl import RtlParams, build_baseline_rtl, build_rescue_rtl
from repro.rtl.experiment import generate_tests, scan_chain_table

_CACHE = "table3"


def _compute():
    cached = cache_json(_CACHE)
    if cached is not None:
        return cached
    out = {}
    for name, builder in (("base", build_baseline_rtl),
                          ("rescue", build_rescue_rtl)):
        t0 = time.time()
        setup = generate_tests(builder(RtlParams()), seed=0)
        row = scan_chain_table(setup)
        row["atpg_seconds"] = round(time.time() - t0, 1)
        out[name] = row
    save_json(_CACHE, out)
    return out


def test_table3_scan_chain_data(benchmark):
    data = _compute()
    headers = ("", "Base", "Rescue")
    keys = ("faults", "collapsed_faults", "cells", "vectors", "cycles",
            "coverage_pct")
    rows = [(k, data["base"][k], data["rescue"][k]) for k in keys]
    ratio = data["rescue"]["cycles"] / data["base"]["cycles"]
    rows.append(("cycles ratio (paper: 1.13)", "1.00", f"{ratio:.2f}"))
    print_table("Table 3: scan chain data", headers, rows)

    # Shape checks against the paper's observations.
    assert data["rescue"]["cells"] > data["base"]["cells"], (
        "cycle splitting must add pipeline registers"
    )
    assert data["rescue"]["coverage_pct"] > 95
    assert data["base"]["coverage_pct"] > 95

    # Benchmark: application of one 64-vector batch (a single machine
    # word per net) through the bit-packed simulator — the tester's
    # inner loop.  ``benchmarks/bench_faultsim.py`` compares backends.
    import numpy as np

    from repro.netlist.compiled import make_simulator

    model = build_rescue_rtl(RtlParams.tiny())
    sim = make_simulator(model.netlist, "word")
    rng = np.random.default_rng(0)
    patterns = rng.integers(0, 2, size=(64, sim.n_sources)).astype(bool)
    benchmark(lambda: sim.good_values(patterns))
