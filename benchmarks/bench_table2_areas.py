"""Table 2 — total areas and relative component areas.

Regenerates the area breakdown of the Rescue core (component shares and
the 90nm totals) and shows how the per-group fault-target areas scale to
the Figure 9 nodes.
"""

from conftest import print_table

from repro.yieldmodel import AreaModel, TABLE2_FRACTIONS
from repro.yieldmodel.area import (
    BASELINE_CORE_AREA_90NM,
    RESCUE_CORE_AREA_90NM,
)


def test_table2_areas(benchmark):
    rows = [
        (name, f"{frac:.0%}")
        for name, frac in sorted(
            TABLE2_FRACTIONS.items(), key=lambda kv: -kv[1]
        )
    ]
    rows.append(("baseline total area", f"{BASELINE_CORE_AREA_90NM:.0f} mm^2"))
    rows.append(("Rescue total area", f"{RESCUE_CORE_AREA_90NM:.0f} mm^2"))
    print_table(
        "Table 2: component relative areas (Rescue core)",
        ("component", "share"),
        rows,
    )

    model = AreaModel(growth=0.3)
    node_rows = []
    for node in (90, 65, 32, 18):
        groups = model.group_areas(node)
        node_rows.append((
            f"{node}nm",
            f"{model.rescue_core_area(node):.1f}",
            f"{model.baseline_core_area(node):.1f}",
            f"{groups['chipkill']:.2f}",
            f"{groups['int_backend']:.2f}",
            f"{groups['fp_backend']:.2f}",
        ))
    print_table(
        "Core and group areas by node (mm^2, 30% growth)",
        ("node", "rescue core", "baseline core", "chipkill",
         "int-be group", "fp-be group"),
        node_rows,
    )

    result = benchmark(lambda: AreaModel(growth=0.3).group_areas(18))
    assert abs(
        result["chipkill"] + 2 * sum(
            v for k, v in result.items() if k != "chipkill"
        )
        - AreaModel(growth=0.3).rescue_core_area(18)
    ) < 1e-9
