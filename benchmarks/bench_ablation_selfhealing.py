"""Ablation — Rescue + self-healing arrays (paper Section 7 extension).

The paper suggests self-healing arrays (Bower et al.) could cover the BTB
and active list that Rescue leaves as chipkill.  This ablation re-budgets
the chipkill area with the array-structured part protected and measures
the additional relative-YAT headroom at the far nodes.
"""

from conftest import print_table

from repro.yieldmodel import FaultDensityModel, YatModel
from repro.yieldmodel.selfhealing import SelfHealingModel, yat_with_self_healing
from repro.yieldmodel.yat import flat_rescue_ipc


def _penalty(cfg):
    factor = 1.0
    for dim, cost in (("frontend", 0.82), ("int_backend", 0.78),
                      ("fp_backend", 0.96), ("iq_int", 0.93),
                      ("iq_fp", 0.98), ("lsq", 0.94)):
        if getattr(cfg, dim) == 1:
            factor *= cost
    return factor


def test_self_healing_extension(benchmark):
    model = YatModel(
        density=FaultDensityModel(stagnation_node_nm=90),
        growth=0.3,
        baseline_ipc=2.05,
        rescue_ipc=flat_rescue_ipc(2.0, _penalty),
    )
    healing = SelfHealingModel(array_coverage=1.0)
    rows = []
    gains = {}
    for node in (90, 65, 32, 18):
        plain, healed = yat_with_self_healing(model, node, healing)
        gain = 100 * (healed / plain.rescue - 1) if plain.rescue else 0.0
        gains[node] = gain
        rows.append((
            f"{node}nm", f"{plain.core_sparing:.3f}", f"{plain.rescue:.3f}",
            f"{healed:.3f}", f"{gain:+.1f}%",
        ))
    print_table(
        "Ablation: Rescue + self-healing arrays "
        "(protecting the array-structured chipkill area)",
        ("node", "core sparing", "Rescue", "Rescue+SH", "SH gain"),
        rows,
    )
    # Protecting chipkill arrays must help, and help more as density
    # grows (chipkill hits dominate Rescue's residual losses).
    assert gains[18] > gains[90] >= 0.0

    benchmark(lambda: yat_with_self_healing(model, 18, healing))
