"""Monte Carlo validation of the analytic YAT machinery.

Samples thousands of chips (clustered faults, per-core configuration
draw) and compares the average against the closed-form EQ 2/3 evaluation
the Figure 9 numbers come from.  Agreement here certifies the
probability bookkeeping; disagreement would invalidate Figure 9.
"""

from conftest import print_table

from repro.yieldmodel import FaultDensityModel, YatModel
from repro.yieldmodel.montecarlo import simulate_chips
from repro.yieldmodel.yat import flat_rescue_ipc


def _penalty(cfg):
    factor = 1.0
    for dim, cost in (("frontend", 0.82), ("int_backend", 0.78),
                      ("fp_backend", 0.96), ("iq_int", 0.93),
                      ("iq_fp", 0.98), ("lsq", 0.94)):
        if getattr(cfg, dim) == 1:
            factor *= cost
    return factor


def test_montecarlo_validates_analytic_yat(benchmark):
    model = YatModel(
        density=FaultDensityModel(stagnation_node_nm=90),
        growth=0.3,
        baseline_ipc=2.05,
        rescue_ipc=flat_rescue_ipc(2.0, _penalty),
    )
    rows = []
    errors = []
    for node in (90, 65, 32, 18):
        analytic = model.evaluate(node).rescue
        mc = simulate_chips(
            model.density, node, model.growth,
            model.baseline_ipc, model.rescue_ipc,
            n_chips=4000, seed=42,
        )
        err = abs(mc.mean_relative_yat - analytic)
        errors.append(err)
        rows.append((
            f"{node}nm", f"{analytic:.4f}", f"{mc.mean_relative_yat:.4f}",
            f"{err:.4f}",
            f"{100 * mc.degraded_core_fraction:.1f}%",
            f"{100 * mc.dead_core_fraction:.1f}%",
        ))
    print_table(
        "Monte Carlo (4000 chips) vs analytic EQ 2/3 relative YAT",
        ("node", "analytic", "sampled", "|error|", "degraded cores",
         "dead cores"),
        rows,
    )
    assert max(errors) < 0.02, "sampled and analytic YAT diverge"

    benchmark(
        lambda: simulate_chips(
            model.density, 18, model.growth,
            model.baseline_ipc, model.rescue_ipc,
            n_chips=300, seed=1,
        )
    )
