"""Figure 8 — IPC degradation of the ICI transformations.

Runs every SPEC2000 benchmark on the baseline and Rescue machines (same
trace) and prints the per-benchmark IPC pair plus the degradation.  The
paper reports 0% (swim) to 10% (bzip) with a 4% average; the shape to
check is *which* benchmarks degrade: issue-pressure integer codes at the
top, memory-bound and FP loop codes near zero.
"""

from conftest import BENCH_INSTRUCTIONS, BENCH_WARMUP, print_table

from repro.cpu import Core, MachineConfig
from repro.workloads import PROFILES, generate_trace


def _ipc_pair(prof, cache):
    from repro.cpu.degraded import IpcCache

    base_cfg = MachineConfig(rescue=False)
    resc_cfg = MachineConfig(rescue=True)
    n = BENCH_INSTRUCTIONS
    base = cache.get_or_run(prof.name, base_cfg, n_instructions=n)
    resc = cache.get_or_run(prof.name, resc_cfg, n_instructions=n)
    return base, resc


def test_figure8_ipc_degradation(benchmark, ipc_cache):
    rows = []
    deltas = []
    for prof in PROFILES:
        base, resc = _ipc_pair(prof, ipc_cache)
        delta = 100 * (1 - resc / base) if base else 0.0
        deltas.append(delta)
        rows.append((
            prof.name, f"{base:.2f}", f"{resc:.2f}", f"{delta:+.1f}%",
        ))
    avg = sum(deltas) / len(deltas)
    rows.append(("average", "", "", f"{avg:+.1f}%"))
    print_table(
        "Figure 8: IPC, baseline vs Rescue (paper avg: 4%, range 0-10%)",
        ("benchmark", "baseline IPC", "Rescue IPC", "degradation"),
        rows,
    )

    # Shape assertions: degradation is small on average, integer codes
    # dominate the top, and the memory-bound benchmarks sit near zero.
    assert -1.0 < avg < 8.0
    by_name = {r[0]: d for r, d in zip(rows, deltas)}
    assert by_name["mcf"] < 1.5
    assert by_name["art"] < 1.5
    int_avg = sum(
        d for p, d in zip(PROFILES, deltas) if not p.is_fp
    ) / sum(1 for p in PROFILES if not p.is_fp)
    fp_avg = sum(
        d for p, d in zip(PROFILES, deltas) if p.is_fp
    ) / sum(1 for p in PROFILES if p.is_fp)
    assert int_avg > fp_avg

    # Benchmark the simulator itself on one representative workload.
    trace = generate_trace(PROFILES[0], 4_000)
    benchmark(
        lambda: Core(MachineConfig(rescue=True), iter(trace)).run(4_000)
    )


def _run_one(name, n):
    from repro.workloads import profile

    trace = generate_trace(profile(name), n + BENCH_WARMUP)
    return Core(MachineConfig(), iter(trace)).run(n, warmup=BENCH_WARMUP)
