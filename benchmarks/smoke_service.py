"""End-to-end smoke test for the campaign service (CI gate).

Starts a real ``repro serve`` subprocess on an ephemeral port and a
fresh cache root, submits a tiny isolation campaign over HTTP, polls it
to completion, and asserts the golden stats: every injected fault is
correctly isolated (the paper's §5 claim for the ATPG-backed flow) and
the service's merged result is bit-identical to a direct in-process
``run_isolation`` call.  Exits nonzero on any mismatch.

Usage: python benchmarks/smoke_service.py [--n-faults N] [--chunk-size C]
"""

import argparse
import dataclasses
import os
import select
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.runner import get_campaign  # noqa: E402
from repro.service import ServiceClient  # noqa: E402

PARAMS = {"n_faults": 12, "chunk_size": 3}


def spawn_service(cache_root):
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(cache_root)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parents[1] / "src"
    ) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", "0", "--service-workers", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        ready, _, _ = select.select([proc.stdout], [], [], 1.0)
        if not ready:
            if proc.poll() is not None:
                break
            continue
        line = proc.stdout.readline()
        if line.startswith("serving on "):
            return proc, line.split("serving on ", 1)[1].strip()
        if not line:
            break
    proc.kill()
    raise SystemExit("FAIL: service did not start")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--n-faults", type=int, default=PARAMS["n_faults"])
    ap.add_argument("--chunk-size", type=int,
                    default=PARAMS["chunk_size"])
    args = ap.parse_args()
    params = {"n_faults": args.n_faults, "chunk_size": args.chunk_size}

    entry = get_campaign("isolation")
    t0 = time.perf_counter()
    direct = entry.run(entry.make_spec(params), checkpoint=False)
    t_direct = time.perf_counter() - t0
    golden = entry.result_to_json(direct)

    root = tempfile.mkdtemp(prefix="repro-svc-smoke-")
    proc, url = spawn_service(root)
    try:
        client = ServiceClient(url)
        t0 = time.perf_counter()
        job = client.submit("isolation", params)["job"]
        result = client.wait(job, timeout=300)["result"]
        t_service = time.perf_counter() - t0
        status = client.status(job)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    stats = entry.result_from_json(result)
    failures = []
    if result != golden:
        failures.append("service result differs from direct run")
    if stats.correct_rate != 1.0:
        failures.append(
            f"correct_rate {stats.correct_rate} != 1.0"
        )
    if status["state"] != "done" or status["run_count"] != 1:
        failures.append(f"unexpected job status: {status}")

    print(f"smoke_service: {params['n_faults']} faults | "
          f"direct {t_direct:.1f}s, via service {t_service:.1f}s | "
          f"correct_rate={stats.correct_rate:.3f}")
    print(f"  {entry.summarize(stats)}")
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}")
        return 1
    print("OK: service result bit-identical to direct run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
